"""Fork/COW and shared-memory IPC under AISE — the paper's system claims."""

import pytest

from repro.mem.layout import PAGE_SIZE


class TestSharedMemory:
    def test_two_processes_communicate(self, tiny_kernel):
        tiny_kernel.shm_create("chan", 1)
        a = tiny_kernel.create_process()
        b = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x80000, 1, shared_name="chan")
        tiny_kernel.mmap(b.pid, 0x90000, 1, shared_name="chan")  # different vaddr!
        tiny_kernel.write(a.pid, 0x80000 + 10, b"ping")
        assert tiny_kernel.read(b.pid, 0x90000 + 10, 4) == b"ping"
        tiny_kernel.write(b.pid, 0x90000 + 100, b"pong")
        assert tiny_kernel.read(a.pid, 0x80000 + 100, 4) == b"pong"

    def test_same_physical_frame(self, tiny_kernel):
        tiny_kernel.shm_create("seg", 1)
        a = tiny_kernel.create_process()
        b = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x80000, 1, shared_name="seg")
        tiny_kernel.mmap(b.pid, 0x90000, 1, shared_name="seg")
        fa = a.page_table.entry(0x80000 // PAGE_SIZE).frame
        fb = b.page_table.entry(0x90000 // PAGE_SIZE).frame
        assert fa == fb

    def test_shared_pages_never_swapped(self, tiny_kernel):
        tiny_kernel.shm_create("seg", 1)
        a = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x80000, 1, shared_name="seg")
        tiny_kernel.write(a.pid, 0x80000, b"pinned")
        hog = tiny_kernel.create_process()
        tiny_kernel.mmap(hog.pid, 0x100000, 20)
        for i in range(20):
            tiny_kernel.write(hog.pid, 0x100000 + i * PAGE_SIZE, b"z")
        assert a.page_table.entry(0x80000 // PAGE_SIZE).present

    def test_attach_unknown_segment(self, tiny_kernel):
        p = tiny_kernel.create_process()
        with pytest.raises(KeyError):
            tiny_kernel.mmap(p.pid, 0x80000, 1, shared_name="ghost")

    def test_wrong_page_count(self, tiny_kernel):
        tiny_kernel.shm_create("seg2", 2)
        p = tiny_kernel.create_process()
        with pytest.raises(ValueError):
            tiny_kernel.mmap(p.pid, 0x80000, 1, shared_name="seg2")

    def test_unlink_requires_detach(self, tiny_kernel):
        tiny_kernel.shm_create("seg", 1)
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x80000, 1, shared_name="seg")
        with pytest.raises(ValueError):
            tiny_kernel.shm_unlink("seg")
        tiny_kernel.exit_process(p.pid)
        tiny_kernel.shm_unlink("seg")


class TestForkCow:
    def test_child_sees_parent_data(self, tiny_kernel):
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x10000, 1)
        tiny_kernel.write(parent.pid, 0x10000, b"inherited")
        child = tiny_kernel.fork(parent.pid)
        assert tiny_kernel.read(child.pid, 0x10000, 9) == b"inherited"

    def test_fork_shares_frames_until_write(self, tiny_kernel):
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x10000, 1)
        tiny_kernel.write(parent.pid, 0x10000, b"shared")
        child = tiny_kernel.fork(parent.pid)
        pf = parent.page_table.entry(0x10000 // PAGE_SIZE).frame
        cf = child.page_table.entry(0x10000 // PAGE_SIZE).frame
        assert pf == cf  # the copy-on-write optimization
        assert tiny_kernel.stats.cow_breaks == 0

    def test_write_breaks_cow_both_directions(self, tiny_kernel):
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x10000, 1)
        tiny_kernel.write(parent.pid, 0x10000, b"original")
        child = tiny_kernel.fork(parent.pid)
        tiny_kernel.write(child.pid, 0x10000, b"child!!!")
        assert tiny_kernel.read(parent.pid, 0x10000, 8) == b"original"
        assert tiny_kernel.read(child.pid, 0x10000, 8) == b"child!!!"
        assert tiny_kernel.stats.cow_breaks == 1
        pf = parent.page_table.entry(0x10000 // PAGE_SIZE).frame
        cf = child.page_table.entry(0x10000 // PAGE_SIZE).frame
        assert pf != cf

    def test_parent_write_also_breaks(self, tiny_kernel):
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x10000, 1)
        tiny_kernel.write(parent.pid, 0x10000, b"before")
        child = tiny_kernel.fork(parent.pid)
        tiny_kernel.write(parent.pid, 0x10000, b"parent")
        assert tiny_kernel.read(child.pid, 0x10000, 6) == b"before"
        assert tiny_kernel.read(parent.pid, 0x10000, 6) == b"parent"

    def test_last_writer_avoids_copy(self, tiny_kernel):
        """Once the other side broke COW, the sole mapper writes in place."""
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x10000, 1)
        tiny_kernel.write(parent.pid, 0x10000, b"x")
        child = tiny_kernel.fork(parent.pid)
        tiny_kernel.write(child.pid, 0x10000, b"c")
        breaks = tiny_kernel.stats.cow_breaks
        tiny_kernel.write(parent.pid, 0x10000, b"p")
        assert tiny_kernel.stats.cow_breaks == breaks  # no second copy

    def test_fork_inherits_shared_segments(self, tiny_kernel):
        tiny_kernel.shm_create("bus", 1)
        parent = tiny_kernel.create_process()
        tiny_kernel.mmap(parent.pid, 0x80000, 1, shared_name="bus")
        child = tiny_kernel.fork(parent.pid)
        tiny_kernel.write(child.pid, 0x80000, b"from child")
        assert tiny_kernel.read(parent.pid, 0x80000, 10) == b"from child"

    def test_fork_counts(self, tiny_kernel):
        parent = tiny_kernel.create_process()
        tiny_kernel.fork(parent.pid)
        tiny_kernel.fork(parent.pid)
        assert tiny_kernel.stats.forks == 2

    def test_grandchild_chain(self, tiny_kernel):
        a = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x10000, 1)
        tiny_kernel.write(a.pid, 0x10000, b"gen0")
        b = tiny_kernel.fork(a.pid)
        c = tiny_kernel.fork(b.pid)
        assert tiny_kernel.read(c.pid, 0x10000, 4) == b"gen0"
        tiny_kernel.write(c.pid, 0x10000, b"gen2")
        assert tiny_kernel.read(a.pid, 0x10000, 4) == b"gen0"
        assert tiny_kernel.read(b.pid, 0x10000, 4) == b"gen0"
