"""Kernel basics: mapping, demand paging, swapping, process lifecycle."""

import pytest

from repro.core.errors import PageFaultError
from repro.mem.layout import PAGE_SIZE


class TestBasicAccess:
    def test_write_read_roundtrip(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 2)
        tiny_kernel.write(p.pid, 0x10000, b"hello")
        assert tiny_kernel.read(p.pid, 0x10000, 5) == b"hello"

    def test_demand_zero_pages(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 1)
        assert tiny_kernel.read(p.pid, 0x10000, 64) == bytes(64)
        assert tiny_kernel.stats.demand_zero_fills == 1

    def test_cross_page_access(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 2)
        data = bytes(range(256)) * 20  # 5120 bytes, spans both pages
        tiny_kernel.write(p.pid, 0x10000 + 3000, data[:2000])
        assert tiny_kernel.read(p.pid, 0x10000 + 3000, 2000) == data[:2000]

    def test_unmapped_access_faults(self, tiny_kernel):
        p = tiny_kernel.create_process()
        with pytest.raises(PageFaultError):
            tiny_kernel.read(p.pid, 0xDEAD000, 1)

    def test_mmap_requires_alignment(self, tiny_kernel):
        p = tiny_kernel.create_process()
        with pytest.raises(ValueError):
            tiny_kernel.mmap(p.pid, 0x10001, 1)

    def test_process_isolation(self, tiny_kernel):
        a = tiny_kernel.create_process()
        b = tiny_kernel.create_process()
        tiny_kernel.mmap(a.pid, 0x10000, 1)
        tiny_kernel.mmap(b.pid, 0x10000, 1)
        tiny_kernel.write(a.pid, 0x10000, b"AAAA")
        tiny_kernel.write(b.pid, 0x10000, b"BBBB")
        assert tiny_kernel.read(a.pid, 0x10000, 4) == b"AAAA"
        assert tiny_kernel.read(b.pid, 0x10000, 4) == b"BBBB"


class TestSwapping:
    def fill_memory(self, kernel, pages=20):
        """Touch more pages than there are frames (16)."""
        hog = kernel.create_process("hog")
        kernel.mmap(hog.pid, 0x100000, pages)
        for i in range(pages):
            kernel.write(hog.pid, 0x100000 + i * PAGE_SIZE, bytes([i]) * 128)
        return hog

    def test_eviction_happens(self, tiny_kernel):
        self.fill_memory(tiny_kernel)
        assert tiny_kernel.stats.swap_outs > 0

    def test_swapped_data_survives_roundtrip(self, tiny_kernel):
        hog = self.fill_memory(tiny_kernel)
        for i in range(20):
            assert tiny_kernel.read(hog.pid, 0x100000 + i * PAGE_SIZE, 128) == bytes([i]) * 128
        assert tiny_kernel.stats.swap_ins > 0

    def test_aise_swap_needs_no_reencryption(self, tiny_kernel):
        self.fill_memory(tiny_kernel)
        assert tiny_kernel.stats.swap_reencrypted_blocks == 0

    def test_page_table_reflects_residency(self, tiny_kernel):
        hog = self.fill_memory(tiny_kernel)
        entries = hog.page_table.entries()
        swapped = [e for e in entries if e.swap_slot is not None]
        resident = [e for e in entries if e.present]
        assert swapped and resident
        assert all(not e.present for e in swapped)

    def test_swap_device_slots_cycle(self, tiny_kernel):
        hog = self.fill_memory(tiny_kernel)
        used_before = tiny_kernel.swap.free_slots
        for i in range(20):
            tiny_kernel.read(hog.pid, 0x100000 + i * PAGE_SIZE, 1)
        assert tiny_kernel.swap.free_slots >= used_before


class TestProcessLifecycle:
    def test_exit_releases_frames(self, tiny_kernel):
        p = tiny_kernel.create_process()
        tiny_kernel.mmap(p.pid, 0x10000, 3)
        tiny_kernel.write(p.pid, 0x10000, b"x" * (3 * PAGE_SIZE))
        used = tiny_kernel.frames.used_frames
        tiny_kernel.exit_process(p.pid)
        assert tiny_kernel.frames.used_frames == used - 3

    def test_exit_releases_swap_slots(self, tiny_kernel):
        hog = tiny_kernel.create_process("hog")
        tiny_kernel.mmap(hog.pid, 0x100000, 20)
        for i in range(20):
            tiny_kernel.write(hog.pid, 0x100000 + i * PAGE_SIZE, b"z")
        free_before = tiny_kernel.swap.free_slots
        tiny_kernel.exit_process(hog.pid)
        assert tiny_kernel.swap.free_slots > free_before

    def test_pid_reuse(self, tiny_kernel):
        p = tiny_kernel.create_process()
        pid = p.pid
        tiny_kernel.exit_process(pid)
        assert tiny_kernel.create_process().pid == pid

    def test_pid_reuse_disabled(self, kernel_factory):
        kernel = kernel_factory()
        kernel.reuse_pids = False
        p = kernel.create_process()
        pid = p.pid
        kernel.exit_process(pid)
        assert kernel.create_process().pid != pid

    def test_oom_when_nothing_evictable(self, kernel_factory):
        kernel = kernel_factory(frames=2, swap_slots=4)
        kernel.shm_create("pin1", 1)
        kernel.shm_create("pin2", 1)  # both frames pinned
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        with pytest.raises(MemoryError):
            kernel.write(p.pid, 0x10000, b"x")
