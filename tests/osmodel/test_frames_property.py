"""Property-based checks on the frame allocator and TLB."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.osmodel.frames import FrameAllocator
from repro.osmodel.tlb import TLB


class FrameAllocatorModel(RuleBasedStateMachine):
    """The allocator against a trivial set-based reference model."""

    def __init__(self):
        super().__init__()
        self.allocator = FrameAllocator(total_frames=8)
        self.free = set(range(8))
        self.used: dict[int, set] = {}

    @rule()
    def allocate(self):
        frame = self.allocator.allocate()
        if self.free:
            assert frame in self.free
            self.free.remove(frame)
            self.used[frame] = set()
        else:
            assert frame is None

    @precondition(lambda self: self.used)
    @rule(pid=st.integers(min_value=1, max_value=3),
          vpage=st.integers(min_value=0, max_value=5),
          pick=st.integers(min_value=0))
    def attach(self, pid, vpage, pick):
        frame = sorted(self.used)[pick % len(self.used)]
        self.allocator.attach(frame, pid, vpage)
        self.used[frame].add((pid, vpage))

    @precondition(lambda self: any(self.used.values()))
    @rule(pick=st.integers(min_value=0))
    def detach(self, pick):
        mapped = [f for f, m in self.used.items() if m]
        frame = mapped[pick % len(mapped)]
        mapper = next(iter(self.used[frame]))
        self.allocator.detach(frame, *mapper)
        self.used[frame].discard(mapper)

    @precondition(lambda self: any(not m for m in self.used.values()))
    @rule(pick=st.integers(min_value=0))
    def release_unmapped(self, pick):
        candidates = [f for f, m in self.used.items() if not m]
        frame = candidates[pick % len(candidates)]
        self.allocator.release(frame)
        del self.used[frame]
        self.free.add(frame)

    @invariant()
    def accounting_balances(self):
        allocator = getattr(self, "allocator", None)
        if allocator is None:
            return
        assert allocator.free_frames == len(self.free)
        assert allocator.used_frames == len(self.used)

    @invariant()
    def victims_are_always_evictable(self):
        allocator = getattr(self, "allocator", None)
        if allocator is None:
            return
        victim = allocator.pick_victim()
        if victim is not None:
            assert victim.mappers
            assert not victim.pinned
            assert not victim.shared


TestFrameAllocatorModel = FrameAllocatorModel.TestCase
TestFrameAllocatorModel.settings = settings(max_examples=25, stateful_step_count=30,
                                            deadline=None)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 10), st.integers(0, 7)),
                max_size=60))
def test_tlb_never_lies(operations):
    """Whatever the fill/lookup sequence, a TLB hit must return the frame
    most recently filled for that (pid, vpage)."""
    tlb = TLB(entries=4)
    truth = {}
    for pid, vpage, frame in operations:
        if frame % 2:  # odd -> treat as fill
            tlb.fill(pid, vpage, frame)
            truth[(pid, vpage)] = frame
        else:
            got = tlb.lookup(pid, vpage)
            if got is not None:
                assert got == truth[(pid, vpage)]
