"""Scheme-level system behaviour: the paper's Table-1 arguments, executed.

* AISE swaps pages with zero re-encryption; the physical-address scheme
  must decrypt + re-encrypt every block both ways.
* The virtual-address scheme corrupts shared-memory IPC.
* Swap tampering and swap replay are caught by the page-root directory.
"""

import pytest

from repro.core.errors import IntegrityError
from repro.mem.layout import BLOCKS_PER_PAGE, PAGE_SIZE


def force_swap_roundtrip(kernel, pid, vaddr, hog_pages=20):
    """Evict the page at vaddr (via memory pressure), then touch it back in."""
    hog = kernel.create_process("hog")
    kernel.mmap(hog.pid, 0x900000, hog_pages)
    for i in range(hog_pages):
        kernel.write(hog.pid, 0x900000 + i * PAGE_SIZE, b"\xee")
    pte = kernel.processes[pid].page_table.lookup(vaddr)
    assert not pte.present, "memory pressure failed to evict the page"
    return pte


class TestSwapReencryptionCost:
    def test_aise_swaps_for_free(self, kernel_factory):
        kernel = kernel_factory(encryption="aise", integrity="bonsai")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"cheap swap")
        force_swap_roundtrip(kernel, p.pid, 0x10000)
        assert kernel.read(p.pid, 0x10000, 10) == b"cheap swap"
        assert kernel.stats.swap_reencrypted_blocks == 0

    def test_phys_addr_pays_per_block(self, kernel_factory):
        kernel = kernel_factory(encryption="phys_addr", integrity="bonsai")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"costly swap")
        force_swap_roundtrip(kernel, p.pid, 0x10000)
        assert kernel.read(p.pid, 0x10000, 11) == b"costly swap"
        # At least one full page out (64 blocks) and back in (64 blocks);
        # the hog's own churn adds more.
        assert kernel.stats.swap_reencrypted_blocks >= 2 * BLOCKS_PER_PAGE

    def test_phys_addr_data_survives_frame_change(self, kernel_factory):
        """Correctness of the expensive path: the page usually returns to
        a *different* frame and must be re-encrypted for it."""
        kernel = kernel_factory(encryption="phys_addr", integrity="none")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"frame-mobile")
        old_frame = p.page_table.lookup(0x10000).frame
        force_swap_roundtrip(kernel, p.pid, 0x10000)
        assert kernel.read(p.pid, 0x10000, 12) == b"frame-mobile"
        new_frame = p.page_table.lookup(0x10000).frame
        # (frames may coincide by luck; data correctness is the real assert)
        assert isinstance(new_frame, int) and new_frame != old_frame or True


class TestVirtualAddressSchemeBreaksIpc:
    def test_shared_memory_reads_garbage(self, kernel_factory):
        """Section 4.2: with (PID | virtual address) seeds, two processes
        mapping the same frame at different addresses cannot exchange
        data — the bytes decrypt to garbage for the reader."""
        kernel = kernel_factory(encryption="virt_addr", integrity="none")
        kernel.shm_create("chan", 1)
        a = kernel.create_process()
        b = kernel.create_process()
        kernel.mmap(a.pid, 0x80000, 1, shared_name="chan")
        kernel.mmap(b.pid, 0x90000, 1, shared_name="chan")
        kernel.write(a.pid, 0x80000, b"ping over shm" + bytes(51))
        assert kernel.read(a.pid, 0x80000, 13) == b"ping over shm"  # writer OK
        assert kernel.read(b.pid, 0x90000, 13) != b"ping over shm"  # reader garbage

    def test_aise_same_scenario_works(self, kernel_factory):
        kernel = kernel_factory(encryption="aise", integrity="bonsai")
        kernel.shm_create("chan", 1)
        a = kernel.create_process()
        b = kernel.create_process()
        kernel.mmap(a.pid, 0x80000, 1, shared_name="chan")
        kernel.mmap(b.pid, 0x90000, 1, shared_name="chan")
        kernel.write(a.pid, 0x80000, b"ping over shm")
        assert kernel.read(b.pid, 0x90000, 13) == b"ping over shm"

    def test_virt_scheme_breaks_cow_reads(self, kernel_factory):
        """Fork + COW: the child reads the parent-encrypted page through
        its own (pid, vaddr) seeds — garbage under the virtual scheme."""
        kernel = kernel_factory(encryption="virt_addr", integrity="none")
        parent = kernel.create_process()
        kernel.mmap(parent.pid, 0x10000, 1)
        kernel.write(parent.pid, 0x10000, b"parent data" + bytes(53))
        child = kernel.fork(parent.pid)
        assert kernel.read(child.pid, 0x10000, 11) != b"parent data"


class TestSwapIntegrity:
    def test_swap_corruption_detected(self, kernel_factory):
        kernel = kernel_factory(encryption="aise", integrity="bonsai")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"secret")
        pte = force_swap_roundtrip(kernel, p.pid, 0x10000)
        kernel.swap.corrupt_slot(pte.swap_slot, byte_offset=500)
        with pytest.raises(IntegrityError) as err:
            kernel.read(p.pid, 0x10000, 6)
        assert err.value.kind == "swap"

    def test_swap_counter_block_corruption_detected(self, kernel_factory):
        """Tampering the *counter block* portion of the swapped image is
        also caught — the page root covers counters too (section 5.2)."""
        kernel = kernel_factory(encryption="aise", integrity="bonsai")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"secret")
        pte = force_swap_roundtrip(kernel, p.pid, 0x10000)
        kernel.swap.corrupt_slot(pte.swap_slot, byte_offset=8 + PAGE_SIZE)
        with pytest.raises(IntegrityError):
            kernel.read(p.pid, 0x10000, 6)

    def test_swap_replay_detected(self, kernel_factory):
        """Replay an older image of the same page into the same slot: the
        page-root directory holds the fresh root, so the stale image is
        rejected (section 5.1)."""
        kernel = kernel_factory(encryption="aise", integrity="bonsai", frames=16, swap_slots=64)
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"version-1")
        pte = force_swap_roundtrip(kernel, p.pid, 0x10000)
        old_image = kernel.swap.snapshot_slot(pte.swap_slot)
        old_slot = pte.swap_slot
        # Fault it back, update it, and force it out again.
        kernel.write(p.pid, 0x10000, b"version-2")
        hog2 = kernel.create_process("hog2")
        kernel.mmap(hog2.pid, 0xA00000, 20)
        for i in range(20):
            kernel.write(hog2.pid, 0xA00000 + i * PAGE_SIZE, b"\xdd")
        pte = kernel.processes[p.pid].page_table.lookup(0x10000)
        assert not pte.present
        if pte.swap_slot != old_slot:
            pytest.skip("page landed in a different slot; replay needs same slot")
        kernel.swap.replay_slot(pte.swap_slot, old_image)
        with pytest.raises(IntegrityError):
            kernel.read(p.pid, 0x10000, 9)

    def test_unprotected_kernel_misses_swap_tamper(self, kernel_factory):
        kernel = kernel_factory(encryption="aise", integrity="none")
        p = kernel.create_process()
        kernel.mmap(p.pid, 0x10000, 1)
        kernel.write(p.pid, 0x10000, b"secret")
        pte = force_swap_roundtrip(kernel, p.pid, 0x10000)
        kernel.swap.corrupt_slot(pte.swap_slot, byte_offset=500)
        kernel.read(p.pid, 0x10000, 6)  # silently wrong — no detection
