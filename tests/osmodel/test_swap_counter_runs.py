"""Swap round-trips for every counter-mode scheme (regression).

The old export path copied only ONE counter block per page, but flat-
counter schemes pack several per page (global64: 8), and the install
path dropped flat-scheme counters entirely. A page returning to a
*different* frame then decrypted against the previous tenant's counters.
These tests round-trip a page through swap under real memory pressure
for every counter-mode scheme and demand the data come back intact —
including when the swap image's counter run is what carries the truth.
"""

from __future__ import annotations

import pytest

from repro.mem.layout import BLOCK_SIZE, PAGE_SIZE
from repro.schemes import encryption_keys, encryption_scheme

from .test_kernel_schemes import force_swap_roundtrip

COUNTER_SCHEMES = [k for k in encryption_keys() if encryption_scheme(k).uses_counters]

PAYLOAD = b"counter-run survives swap"


def _roundtrip(kernel):
    p = kernel.create_process()
    kernel.mmap(p.pid, 0x10000, 1)
    kernel.write(p.pid, 0x10000, PAYLOAD)
    old_frame = p.page_table.lookup(0x10000).frame
    force_swap_roundtrip(kernel, p.pid, 0x10000)
    data = kernel.read(p.pid, 0x10000, len(PAYLOAD))
    new_frame = p.page_table.lookup(0x10000).frame
    return data, old_frame, new_frame


@pytest.mark.parametrize("enc", COUNTER_SCHEMES)
def test_swap_roundtrip_preserves_data(kernel_factory, enc):
    kernel = kernel_factory(encryption=enc, integrity="bonsai")
    data, _, _ = _roundtrip(kernel)
    assert data == PAYLOAD


@pytest.mark.parametrize("enc", COUNTER_SCHEMES)
def test_swap_roundtrip_into_a_different_frame(kernel_factory, enc):
    """The page must decrypt at a frame it never occupied — exactly the
    case the single-block counter export got wrong for flat schemes."""
    kernel = kernel_factory(encryption=enc, integrity="bonsai")
    data, old_frame, new_frame = _roundtrip(kernel)
    assert data == PAYLOAD
    if new_frame == old_frame:
        pytest.skip("page happened to return to its original frame")


@pytest.mark.parametrize("enc", COUNTER_SCHEMES)
def test_swap_image_carries_the_whole_counter_run(kernel_factory, enc):
    """The exported image's counter section must equal the page's actual
    counter region content, for however many blocks the scheme packs."""
    kernel = kernel_factory(encryption=enc, integrity="bonsai")
    machine = kernel.machine
    scheme = encryption_scheme(enc)
    p = kernel.create_process()
    kernel.mmap(p.pid, 0x10000, 1)
    kernel.write(p.pid, 0x10000, PAYLOAD)
    frame = p.page_table.lookup(0x10000).frame
    image = machine.export_page_image(frame)
    assert len(image) == machine.image_blocks * BLOCK_SIZE
    run = image[8 + PAGE_SIZE : 8 + PAGE_SIZE + scheme.image_counter_blocks * BLOCK_SIZE]
    expected = scheme.export_counter_run(machine, frame)
    assert run == expected
    assert len(run) == scheme.image_counter_blocks * BLOCK_SIZE
    # A written page's counters are non-trivial for every counter scheme.
    assert any(run), f"{enc}: exported counter run is all zeros"


def test_global64_swaps_with_standard_merkle_tree(kernel_factory):
    """The Figure-6 comparison point (global64 + standard MT): installing
    the 8-block counter run must also re-anchor the tree over it, or the
    next counter read fails verification."""
    kernel = kernel_factory(encryption="global64", integrity="merkle")
    data, _, _ = _roundtrip(kernel)
    assert data == PAYLOAD
