"""Stateful property test: the kernel vs. a plain-dict shadow model.

Hypothesis drives random sequences of OS operations (map, write, read,
fork, exit) against a small AISE+BMT machine and checks every read
against an in-Python shadow of what each process should see. Any
encryption, integrity, COW, or swap bug that corrupts data surfaces as a
shadow mismatch; any spurious IntegrityError surfaces as an exception.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro.core import MachineConfig, SecureMemorySystem
from repro.osmodel import Kernel

PAGE = 4096
VBASE = 0x100000
MAX_PAGES = 6  # per process


class KernelModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=8 * PAGE, swap_bytes=64 * PAGE,
                          encryption="aise", integrity="bonsai")
        )
        self.kernel = Kernel(machine, swap_slots=64)
        self.shadow: dict[int, bytearray] = {}  # pid -> virtual image
        self.pids: list[int] = []
        root = self.kernel.create_process("root")
        self.kernel.mmap(root.pid, VBASE, MAX_PAGES)
        self.shadow[root.pid] = bytearray(MAX_PAGES * PAGE)
        self.pids.append(root.pid)

    # -- operations -----------------------------------------------------------

    @rule(offset=st.integers(min_value=0, max_value=MAX_PAGES * PAGE - 32),
          data=st.binary(min_size=1, max_size=32),
          which=st.integers(min_value=0))
    def write(self, offset, data, which):
        pid = self.pids[which % len(self.pids)]
        self.kernel.write(pid, VBASE + offset, data)
        self.shadow[pid][offset : offset + len(data)] = data

    @rule(offset=st.integers(min_value=0, max_value=MAX_PAGES * PAGE - 64),
          length=st.integers(min_value=1, max_value=64),
          which=st.integers(min_value=0))
    def read(self, offset, length, which):
        pid = self.pids[which % len(self.pids)]
        got = self.kernel.read(pid, VBASE + offset, length)
        assert got == bytes(self.shadow[pid][offset : offset + length])

    @precondition(lambda self: len(self.pids) < 4)
    @rule(which=st.integers(min_value=0))
    def fork(self, which):
        parent = self.pids[which % len(self.pids)]
        child = self.kernel.fork(parent)
        self.shadow[child.pid] = bytearray(self.shadow[parent])
        self.pids.append(child.pid)

    @precondition(lambda self: len(self.pids) > 1)
    @rule(which=st.integers(min_value=1))
    def exit(self, which):
        pid = self.pids.pop(which % (len(self.pids) - 1) + 1)
        self.kernel.exit_process(pid)
        del self.shadow[pid]

    # -- invariants --------------------------------------------------------------

    @invariant()
    def frames_are_consistent(self):
        kernel = getattr(self, "kernel", None)
        if kernel is None:
            return
        assert kernel.frames.used_frames + kernel.frames.free_frames == kernel.frames.total_frames


TestKernelStateful = KernelModel.TestCase
TestKernelStateful.settings = settings(max_examples=12, stateful_step_count=30, deadline=None)
