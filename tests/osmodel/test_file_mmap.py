"""File-backed mmap: glibc-style file I/O and the shared-library case.

Section 4.2's strongest examples of why seeds must be address-free:
mmap'd files (used "extensively in glibc for file I/O") and shared
libraries (one physical copy, many mappers, copy-on-write privates).
"""

import pytest

from repro.core import IntegrityError
from repro.mem.layout import PAGE_SIZE
from repro.osmodel.filesystem import FileStore


@pytest.fixture
def kernel(kernel_factory):
    return kernel_factory(frames=24, swap_slots=64)


class TestFileStore:
    def test_create_read_roundtrip(self):
        store = FileStore()
        store.create("a.txt", b"hello file")
        assert store.read_page("a.txt", 0)[:10] == b"hello file"
        assert store.size("a.txt") == 10

    def test_pages_padded_past_eof(self):
        store = FileStore()
        store.create("a", b"x")
        page = store.read_page("a", 0)
        assert len(page) == PAGE_SIZE
        assert page[1:] == bytes(PAGE_SIZE - 1)

    def test_write_grows_file(self):
        store = FileStore()
        store.create("a", b"")
        store.write_page("a", 1, b"\x07" * PAGE_SIZE)
        assert store.size("a") == 2 * PAGE_SIZE

    def test_errors(self):
        store = FileStore()
        store.create("a")
        with pytest.raises(FileExistsError):
            store.create("a")
        with pytest.raises(FileNotFoundError):
            store.read_page("ghost", 0)
        with pytest.raises(ValueError):
            store.write_page("a", 0, b"short")
        store.unlink("a")
        assert not store.exists("a")


class TestSharedFileMappings:
    def test_two_processes_share_file_pages(self, kernel):
        kernel.files.create("data", b"initial content" + bytes(4081))
        a = kernel.create_process()
        b = kernel.create_process()
        kernel.mmap_file(a.pid, 0x800000, "data", shared=True)
        kernel.mmap_file(b.pid, 0x900000, "data", shared=True)
        assert kernel.read(b.pid, 0x900000, 15) == b"initial content"
        kernel.write(a.pid, 0x800000, b"updated content")
        assert kernel.read(b.pid, 0x900000, 15) == b"updated content"

    def test_single_resident_copy(self, kernel):
        kernel.files.create("data", bytes(2 * PAGE_SIZE))
        a = kernel.create_process()
        b = kernel.create_process()
        assert kernel.mmap_file(a.pid, 0x800000, "data") == 2
        kernel.mmap_file(b.pid, 0x900000, "data")
        for i in range(2):
            fa = a.page_table.entry(0x800000 // PAGE_SIZE + i).frame
            fb = b.page_table.entry(0x900000 // PAGE_SIZE + i).frame
            assert fa == fb

    def test_msync_writes_back_to_disk(self, kernel):
        kernel.files.create("log", bytes(PAGE_SIZE))
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "log", shared=True)
        kernel.write(p.pid, 0x800000, b"entry 1\n")
        assert kernel.files.raw_content("log")[:7] == bytes(7)  # not yet
        kernel.msync("log")
        assert kernel.files.raw_content("log")[:8] == b"entry 1\n"

    def test_memory_copy_is_encrypted(self, kernel):
        """On disk the file is plaintext (like any shipped binary); the
        resident copy in DRAM must be ciphertext."""
        kernel.files.create("secret", b"\x41" * PAGE_SIZE)
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "secret")
        frame = p.page_table.lookup(0x800000).frame
        assert kernel.machine.memory.raw_read(frame * PAGE_SIZE) != b"\x41" * 64

    def test_file_pages_protected_by_integrity(self, kernel):
        kernel.files.create("bin", b"\x55" * PAGE_SIZE)
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "bin")
        frame = p.page_table.lookup(0x800000).frame
        kernel.machine.memory.corrupt(frame * PAGE_SIZE)
        with pytest.raises(IntegrityError):
            kernel.read(p.pid, 0x800000, 8)


class TestPrivateFileMappings:
    def test_shared_library_cow(self, kernel):
        """MAP_PRIVATE: both processes run the same resident library; a
        private write copies the page, the file and the other mapper are
        untouched (the copy-on-write shared-library case)."""
        kernel.files.create("libm.so", b"\x7fELF" + bytes(PAGE_SIZE - 4))
        a = kernel.create_process()
        b = kernel.create_process()
        kernel.mmap_file(a.pid, 0x700000, "libm.so", shared=False)
        kernel.mmap_file(b.pid, 0x700000, "libm.so", shared=False)
        assert (a.page_table.lookup(0x700000).frame
                == b.page_table.lookup(0x700000).frame)
        kernel.write(a.pid, 0x700000, b"HOOK")
        assert kernel.read(a.pid, 0x700000, 4) == b"HOOK"
        assert kernel.read(b.pid, 0x700000, 4) == b"\x7fELF"
        assert kernel.files.raw_content("libm.so")[:4] == b"\x7fELF"
        assert (a.page_table.lookup(0x700000).frame
                != b.page_table.lookup(0x700000).frame)

    def test_private_write_counts_as_cow_break(self, kernel):
        kernel.files.create("lib", bytes(PAGE_SIZE))
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x700000, "lib", shared=False)
        kernel.write(p.pid, 0x700000, b"x")
        assert kernel.stats.cow_breaks == 1

    def test_sole_private_mapper_still_copies(self, kernel):
        """Even the only process mapper must not scribble on the file
        cache frame — the synthetic file mapper keeps it shared."""
        kernel.files.create("lib", b"\xaa" * PAGE_SIZE)
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x700000, "lib", shared=False)
        kernel.write(p.pid, 0x700000, b"\xbb")
        q = kernel.create_process()
        kernel.mmap_file(q.pid, 0x700000, "lib", shared=False)
        assert kernel.read(q.pid, 0x700000, 1) == b"\xaa"  # cache pristine


class TestFileCacheLifecycle:
    def test_drop_requires_no_mappers(self, kernel):
        kernel.files.create("tmp", bytes(PAGE_SIZE))
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "tmp")
        with pytest.raises(ValueError):
            kernel.drop_file_cache("tmp")
        kernel.munmap(p.pid, 0x800000, 1)
        used = kernel.frames.used_frames
        kernel.drop_file_cache("tmp")
        assert kernel.frames.used_frames == used - 1

    def test_reload_after_drop_sees_synced_content(self, kernel):
        kernel.files.create("tmp", bytes(PAGE_SIZE))
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "tmp", shared=True)
        kernel.write(p.pid, 0x800000, b"durable")
        kernel.msync("tmp")
        kernel.munmap(p.pid, 0x800000, 1)
        kernel.drop_file_cache("tmp")
        kernel.mmap_file(p.pid, 0x800000, "tmp", shared=True)
        assert kernel.read(p.pid, 0x800000, 7) == b"durable"

    def test_file_pages_never_swapped(self, kernel):
        """File-cache frames are pinned like shm: memory pressure swaps
        anonymous pages around them."""
        kernel.files.create("pin", bytes(PAGE_SIZE))
        p = kernel.create_process()
        kernel.mmap_file(p.pid, 0x800000, "pin")
        hog = kernel.create_process()
        kernel.mmap(hog.pid, 0x900000, 30)
        for i in range(30):
            kernel.write(hog.pid, 0x900000 + i * PAGE_SIZE, b"\xcc")
        assert p.page_table.lookup(0x800000).present
