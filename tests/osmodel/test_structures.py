"""Page tables, TLB, frame allocator, swap device."""

import pytest

from repro.core.errors import PageFaultError
from repro.osmodel.frames import FrameAllocator
from repro.osmodel.pagetable import PageTable
from repro.osmodel.swap import SwapDevice
from repro.osmodel.tlb import TLB


class TestPageTable:
    def test_map_and_translate(self):
        pt = PageTable(pid=1)
        pt.map(0x10, frame=3)
        assert pt.translate(0x10 * 4096 + 100) == 3 * 4096 + 100

    def test_unmapped_faults(self):
        pt = PageTable(pid=1)
        with pytest.raises(PageFaultError):
            pt.lookup(0)

    def test_swapped_out_faults_on_translate(self):
        pt = PageTable(pid=1)
        pt.map(0x10, swap_slot=5)
        with pytest.raises(PageFaultError):
            pt.translate(0x10 * 4096)

    def test_double_map_rejected(self):
        pt = PageTable(pid=1)
        pt.map(0x10)
        with pytest.raises(ValueError):
            pt.map(0x10)

    def test_unmap(self):
        pt = PageTable(pid=1)
        pt.map(0x10, frame=1)
        pte = pt.unmap(0x10)
        assert pte.frame == 1
        assert not pt.is_mapped(0x10)

    def test_resident_pages(self):
        pt = PageTable(pid=1)
        pt.map(1, frame=0)
        pt.map(2, swap_slot=0)
        pt.map(3)
        assert [p.vpage for p in pt.resident_pages()] == [1]


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(1, 0x10) is None
        tlb.fill(1, 0x10, 7)
        assert tlb.lookup(1, 0x10) == 7
        assert (tlb.hits, tlb.misses) == (1, 1)

    def test_pid_isolation(self):
        tlb = TLB(entries=4)
        tlb.fill(1, 0x10, 7)
        assert tlb.lookup(2, 0x10) is None

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 1, 1)
        tlb.fill(1, 2, 2)
        tlb.lookup(1, 1)
        tlb.fill(1, 3, 3)  # evicts (1,2)
        assert tlb.lookup(1, 2) is None
        assert tlb.lookup(1, 1) == 1

    def test_invalidate_frame_shoots_down_all(self):
        tlb = TLB(entries=8)
        tlb.fill(1, 0x10, 7)
        tlb.fill(2, 0x20, 7)
        tlb.fill(1, 0x30, 8)
        tlb.invalidate_frame(7)
        assert tlb.lookup(1, 0x10) is None
        assert tlb.lookup(2, 0x20) is None
        assert tlb.lookup(1, 0x30) == 8

    def test_flush_and_hit_rate(self):
        tlb = TLB(entries=4)
        tlb.fill(1, 1, 1)
        tlb.lookup(1, 1)
        tlb.flush()
        assert tlb.lookup(1, 1) is None
        assert tlb.hit_rate == pytest.approx(0.5)


class TestFrameAllocator:
    def test_allocate_until_empty(self):
        alloc = FrameAllocator(total_frames=2)
        assert alloc.allocate() == 0
        assert alloc.allocate() == 1
        assert alloc.allocate() is None

    def test_release_recycles(self):
        alloc = FrameAllocator(total_frames=1)
        frame = alloc.allocate()
        alloc.release(frame)
        assert alloc.allocate() == frame

    def test_release_requires_no_mappers(self):
        alloc = FrameAllocator(total_frames=2)
        frame = alloc.allocate()
        alloc.attach(frame, 1, 0x10)
        with pytest.raises(ValueError):
            alloc.release(frame)
        alloc.detach(frame, 1, 0x10)
        alloc.release(frame)

    def test_victim_is_fifo_oldest(self):
        alloc = FrameAllocator(total_frames=3)
        frames = [alloc.allocate() for _ in range(3)]
        for i, frame in enumerate(frames):
            alloc.attach(frame, 1, i)
        assert alloc.pick_victim().index == frames[0]

    def test_victim_skips_pinned_and_shared(self):
        alloc = FrameAllocator(total_frames=3)
        f0, f1, f2 = (alloc.allocate() for _ in range(3))
        alloc.attach(f0, 1, 0)
        alloc.pin(f0)
        alloc.attach(f1, 1, 1)
        alloc.attach(f1, 2, 9)  # shared
        alloc.attach(f2, 1, 2)
        assert alloc.pick_victim().index == f2

    def test_no_victim_when_all_protected(self):
        alloc = FrameAllocator(total_frames=1)
        frame = alloc.allocate()
        alloc.attach(frame, 1, 0)
        alloc.pin(frame)
        assert alloc.pick_victim() is None


class TestSwapDevice:
    def test_dma_roundtrip(self):
        swap = SwapDevice(slots=4)
        image = (bytes(range(256)) * (swap.slot_bytes // 256 + 1))[: swap.slot_bytes]
        slot = swap.allocate_slot()
        swap.dma_write(slot, image)
        assert swap.dma_read(slot) == image

    def test_slot_allocation(self):
        swap = SwapDevice(slots=2)
        a = swap.allocate_slot()
        b = swap.allocate_slot()
        assert a != b
        with pytest.raises(MemoryError):
            swap.allocate_slot()
        swap.release_slot(a)
        assert swap.allocate_slot() == a

    def test_rejects_wrong_image_size(self):
        swap = SwapDevice(slots=1)
        with pytest.raises(ValueError):
            swap.dma_write(0, b"short")

    def test_corruption_changes_content(self):
        swap = SwapDevice(slots=1)
        image = b"\x00" * swap.slot_bytes
        slot = swap.allocate_slot()
        swap.dma_write(slot, image)
        swap.corrupt_slot(slot, byte_offset=128)
        assert swap.dma_read(slot) != image

    def test_replay_restores_old_image(self):
        swap = SwapDevice(slots=1)
        old = b"\x01" * swap.slot_bytes
        slot = swap.allocate_slot()
        swap.dma_write(slot, old)
        captured = swap.snapshot_slot(slot)
        swap.dma_write(slot, b"\x02" * swap.slot_bytes)
        swap.replay_slot(slot, captured)
        assert swap.dma_read(slot) == old
