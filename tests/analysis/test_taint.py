"""Unit tests for the taint lattice and the per-function tracker."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import taint
from repro.analysis.taint import (
    EMPTY,
    NONDET,
    PLAINTEXT,
    SEED_MATERIAL,
    UNVERIFIED,
    FunctionTainter,
    TaintEnv,
    join,
    pattern,
)


def run_tainter(
    source: str,
    name: str | None = None,
    summaries: dict | None = None,
    param_labels: dict | None = None,
) -> FunctionTainter:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and (name is None or node.name == name):
            return FunctionTainter(
                node, "core/fixture.py", summaries=summaries, param_labels=param_labels
            ).run()
    raise AssertionError(f"no function {name!r} in fixture")


class TestJoin:
    def test_may_taints_join_by_union(self):
        assert join(frozenset({PLAINTEXT}), EMPTY) == frozenset({PLAINTEXT})
        assert join(frozenset({NONDET}), frozenset({UNVERIFIED})) == frozenset(
            {NONDET, UNVERIFIED}
        )

    def test_must_property_joins_by_intersection(self):
        assert join(frozenset({SEED_MATERIAL}), EMPTY) == EMPTY
        assert join(
            frozenset({SEED_MATERIAL}), frozenset({SEED_MATERIAL})
        ) == frozenset({SEED_MATERIAL})

    def test_param_provenance_labels_are_must(self):
        assert join(frozenset({"PARAM:seed"}), EMPTY) == EMPTY
        assert join(
            frozenset({"PARAM:seed", PLAINTEXT}), frozenset({"PARAM:seed"})
        ) == frozenset({"PARAM:seed", PLAINTEXT})

    def test_env_merge_uses_join(self):
        a, b = TaintEnv(), TaintEnv()
        a.set("x", frozenset({SEED_MATERIAL}))
        b.set("x", frozenset({SEED_MATERIAL, PLAINTEXT}))
        b.set("y", frozenset({NONDET}))
        a.merge(b)
        assert a.get("x") == frozenset({SEED_MATERIAL, PLAINTEXT})
        assert a.get("y") == frozenset({NONDET})


class TestCallPattern:
    def test_receiver_hint_is_substring(self):
        p = pattern("decrypt", receivers=("cipher",))
        assert p.matches("decrypt", "self._cipher.decrypt")
        assert not p.matches("decrypt", "self.memory.decrypt")
        assert not p.matches("decrypt", "decrypt")  # bare call: no receiver

    def test_dotted_pattern_matches_suffix(self):
        p = pattern("time", dotted=("time.time",))
        assert p.matches("time", "time.time")
        assert not p.matches("time", "self.time")


class TestSourcesAndSinks:
    def test_decrypt_taints_and_write_block_fires(self):
        tainter = run_tainter(
            """
            def f(self, paddr, raw, seeds):
                plain = self._cipher.decrypt(raw, seeds)
                self.memory.write_block(paddr, plain)
            """
        )
        (hit,) = tainter.sink_hits
        assert hit.sink.label == PLAINTEXT
        assert "decrypt()" in hit.origin

    def test_sanitizer_clears_plaintext(self):
        tainter = run_tainter(
            """
            def f(self, paddr, raw, seeds, ctx):
                plain = self._cipher.decrypt(raw, seeds)
                cipher = self.encryption.encrypt_for_write(paddr, plain, ctx)
                self.memory.write_block(paddr, cipher)
            """
        )
        assert tainter.sink_hits == []

    def test_verifier_clears_unverified(self):
        tainter = run_tainter(
            """
            def f(self, paddr, tag):
                raw = self.memory.read_block(paddr)
                self.integrity.verify_data(paddr, raw, tag)
                use(raw)
            """
        )
        use_call = next(
            c for c in ast.walk(tainter.node)
            if isinstance(c, ast.Call) and getattr(c.func, "id", None) == "use"
        )
        labels, _ = tainter.call_args[id(use_call)]["pos"][0]
        assert UNVERIFIED not in labels

    def test_unverified_survives_without_verifier(self):
        tainter = run_tainter(
            """
            def f(self, paddr):
                raw = self.memory.read_block(paddr)
                use(raw)
            """
        )
        use_call = next(
            c for c in ast.walk(tainter.node)
            if isinstance(c, ast.Call) and getattr(c.func, "id", None) == "use"
        )
        labels, _ = tainter.call_args[id(use_call)]["pos"][0]
        assert UNVERIFIED in labels

    def test_nondet_reaches_simresult_keyword(self):
        tainter = run_tainter(
            """
            import time

            def f():
                started = time.time()
                return SimResult(cycles=1, wall=started)
            """
        )
        (hit,) = tainter.sink_hits
        assert hit.sink.label == NONDET

    def test_os_environ_is_nondet(self):
        tainter = run_tainter(
            """
            import os

            def f():
                flag = os.environ["REPRO_FLAG"]
                return config_fingerprint(flag)
            """
        )
        (hit,) = tainter.sink_hits
        assert hit.sink.label == NONDET
        assert "os.environ" in hit.origin


class TestSeedMaterial:
    def test_seed_producer_labels_value(self):
        tainter = run_tainter(
            """
            def f(self, paddr):
                return self.scheme.seeds_for_block(paddr)
            """
        )
        assert tainter.return_labels == frozenset({SEED_MATERIAL})

    def test_arithmetic_strips_the_must_property(self):
        tainter = run_tainter(
            """
            def f(self, paddr):
                seeds = self.scheme.seeds_for_block(paddr)
                return seeds ^ 1
            """
        )
        assert SEED_MATERIAL not in tainter.return_labels

    def test_returns_join_across_paths(self):
        tainter = run_tainter(
            """
            def f(self, paddr, fast):
                if fast:
                    return self.scheme.seeds_for_block(paddr)
                return paddr
            """
        )
        # sanctioned on one path only: the must-property does not survive
        assert SEED_MATERIAL not in tainter.return_labels


class TestFlowSensitivity:
    def test_loop_carried_taint_reaches_first_use(self):
        tainter = run_tainter(
            """
            def f(self, seeds):
                plain = b""
                for i in range(4):
                    self.memory.write_block(i, plain)
                    plain = self._cipher.decrypt(self.memory.read_block(i), seeds)
            """
        )
        assert any(h.sink.label == PLAINTEXT for h in tainter.sink_hits)

    def test_branch_taint_joins_as_may(self):
        tainter = run_tainter(
            """
            def f(self, raw, seeds, cond, paddr):
                if cond:
                    value = self._cipher.decrypt(raw, seeds)
                else:
                    value = b""
                self.memory.write_block(paddr, value)
            """
        )
        assert any(h.sink.label == PLAINTEXT for h in tainter.sink_hits)

    def test_summary_passes_through_call(self):
        summaries = {"helper": (frozenset({PLAINTEXT}), "core/other.py::helper")}
        tainter = run_tainter(
            """
            def f(self, paddr):
                plain = helper(paddr)
                self.memory.write_block(paddr, plain)
            """,
            summaries=summaries,
        )
        (hit,) = tainter.sink_hits
        assert hit.sink.label == PLAINTEXT

    def test_param_labels_seed_the_environment(self):
        tainter = run_tainter(
            """
            def f(self, seed):
                return seed
            """,
            param_labels={"seed": frozenset({"PARAM:seed"})},
        )
        assert tainter.return_labels == frozenset({"PARAM:seed"})
