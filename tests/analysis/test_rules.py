"""Per-rule fixtures: one snippet that must trigger, one that must not.

``logical_path`` lets a fixture pretend to live anywhere in the package
tree, so path scoping (core/ vs evalx/ vs crypto/) is exercised without
touching real files.
"""

from __future__ import annotations

from repro.analysis import analyze_source, get_rules


def findings_for(rule_id, source, logical):
    return analyze_source(
        source,
        path="fixture.py",
        logical_path=logical,
        rules=get_rules(select=[rule_id]),
    )


def triggers(rule_id, source, logical):
    return bool(findings_for(rule_id, source, logical))


class TestSec001SeedProvenance:
    def test_flags_seed_scheme_class_outside_home(self):
        src = "class SneakySeedScheme:\n    pass\n"
        assert triggers("SEC001", src, "core/machine.py")

    def test_flags_seed_method_on_other_class(self):
        src = "class Engine:\n    def seed(self, block):\n        return block\n"
        assert triggers("SEC001", src, "integrity/bonsai.py")

    def test_flags_address_derived_seed_assignment(self):
        src = "seed = (paddr << 8) | chunk\n"
        assert triggers("SEC001", src, "core/encryption.py")

    def test_flags_seed_factory_returning_address_material(self):
        src = "def make_seed(block_addr):\n    return (block_addr << 6) | 3\n"
        assert triggers("SEC001", src, "crypto/pad.py")

    def test_home_file_is_exempt(self):
        src = "class AiseSeedScheme:\n    def seed(self, x):\n        return x\n"
        assert not triggers("SEC001", src, "core/seeds.py")

    def test_counter_composed_seed_is_fine(self):
        src = "seed = (lpid << 64) | minor\n"
        assert not triggers("SEC001", src, "core/encryption.py")

    def test_unwatched_directories_are_exempt(self):
        src = "seed = (paddr << 8) | chunk\n"
        assert not triggers("SEC001", src, "evalx/tables.py")


class TestSec002UnkeyedHash:
    def test_flags_sha256(self):
        src = "import hashlib\nd = hashlib.sha256(data).digest()\n"
        assert triggers("SEC002", src, "integrity/macs.py")

    def test_flags_unkeyed_blake2(self):
        src = "import hashlib\nd = hashlib.blake2s(data).digest()\n"
        assert triggers("SEC002", src, "core/machine.py")

    def test_keyed_blake2_is_fine(self):
        src = "import hashlib\nd = hashlib.blake2s(data, key=secret).digest()\n"
        assert not triggers("SEC002", src, "core/machine.py")

    def test_domain_separated_blake2_is_fine(self):
        src = "import hashlib\nd = hashlib.blake2s(data, person=b'key-wrap').digest()\n"
        assert not triggers("SEC002", src, "core/encryption.py")

    def test_crypto_and_merkle_internals_are_exempt(self):
        src = "import hashlib\nd = hashlib.sha256(data).digest()\n"
        assert not triggers("SEC002", src, "crypto/mac.py")
        assert not triggers("SEC002", src, "integrity/merkle.py")


class TestSec003CounterMutation:
    def test_flags_minor_subscript_write(self):
        src = "block.minors[3] = 5\n"
        assert triggers("SEC003", src, "core/machine.py")

    def test_flags_major_augmented_assign(self):
        src = "ctr.major += 1\n"
        assert triggers("SEC003", src, "sim/simulator.py")

    def test_flags_lpid_overwrite(self):
        src = "page.lpid = 7\n"
        assert triggers("SEC003", src, "osmodel/kernel.py")

    def test_home_file_is_exempt(self):
        src = "self.minors[block_in_page] = value\n"
        assert not triggers("SEC003", src, "core/counters.py")

    def test_local_variable_named_minors_is_fine(self):
        src = "minors = [0] * 64\n"
        assert not triggers("SEC003", src, "core/machine.py")


class TestSec004PrivateStateReach:
    def test_flags_chained_private_access(self):
        src = "self.encryption._cache.clear()\n"
        assert triggers("SEC004", src, "core/machine.py")

    def test_flags_chained_private_read(self):
        src = "n = machine.tree._trusted\n"
        assert triggers("SEC004", src, "osmodel/kernel.py")

    def test_flags_chained_private_assignment_target(self):
        src = "machine.memory._blocks = dict(image)\n"
        assert triggers("SEC004", src, "core/machine.py")

    def test_own_private_field_is_fine(self):
        src = "self._cache.clear()\n"
        assert not triggers("SEC004", src, "core/encryption.py")

    def test_name_rooted_private_access_is_fine(self):
        src = "if not machine._booted:\n    machine.boot()\n"
        assert not triggers("SEC004", src, "osmodel/kernel.py")

    def test_dunder_attribute_is_fine(self):
        src = "name = type(scheme).__module__\n"
        assert not triggers("SEC004", src, "evalx/parallel.py")


class TestSch001SchemeConstantDispatch:
    def test_flags_constant_comparison_in_simulator(self):
        src = "if self.enc == ENC_AISE:\n    pass\n"
        assert triggers("SCH001", src, "sim/simulator.py")

    def test_flags_constant_import_in_machine(self):
        src = "from .config import ENC_PHYS\n"
        assert triggers("SCH001", src, "core/machine.py")

    def test_flags_membership_test_in_kernel(self):
        src = "if scheme in (ENC_PHYS, ENC_SPLIT):\n    pass\n"
        assert triggers("SCH001", src, "osmodel/kernel.py")

    def test_config_home_is_exempt(self):
        src = "ENC_AISE = 'aise'\nschemes = (ENC_AISE,)\n"
        assert not triggers("SCH001", src, "core/config.py")

    def test_scheme_descriptors_are_exempt(self):
        src = "from ..core.config import ENC_AISE\nkey = ENC_AISE\n"
        assert not triggers("SCH001", src, "schemes/encryption.py")


class TestSch002TreeNodeMutation:
    def test_flags_subscript_write_into_dirty_cache(self):
        src = "machine.tree._dirty[(1, 0)] = raw\n"
        assert triggers("SCH002", src, "core/machine.py")

    def test_flags_mutating_call_on_materialized_set(self):
        src = "self.tree._materialized.add((1, 4))\n"
        assert triggers("SCH002", src, "osmodel/kernel.py")

    def test_flags_trusted_cache_pop_through_tree(self):
        src = "sim.tree._trusted.pop(addr, None)\n"
        assert triggers("SCH002", src, "sim/simulator.py")

    def test_flags_direct_root_store(self):
        src = "machine.tree.root.store(mac)\n"
        assert triggers("SCH002", src, "core/machine.py")

    def test_tree_home_package_is_exempt(self):
        src = "self._dirty[key] = effective\nself.root.store(self._mac_top(raw))\n"
        assert not triggers("SCH002", src, "integrity/incremental.py")

    def test_scheduler_api_calls_are_fine(self):
        src = "machine.tree.flush_pending(run[0], run[1])\nmachine.tree.drain(full=True)\n"
        assert not triggers("SCH002", src, "core/machine.py")

    def test_restore_root_api_is_fine(self):
        src = "machine.tree.restore_root(nonvolatile['root'])\n"
        assert not triggers("SCH002", src, "core/machine.py")

    def test_unrelated_containers_are_fine(self):
        src = "self._trusted.pop(addr, None)\nregistry.nodes[0] = n\n"
        assert not triggers("SCH002", src, "obs/registry.py")


class TestDet001Determinism:
    def test_flags_wall_clock(self):
        src = "import time\nstamp = time.time()\n"
        assert triggers("DET001", src, "sim/simulator.py")

    def test_flags_bare_imported_time(self):
        src = "from time import time\nstamp = time()\n"
        assert triggers("DET001", src, "core/machine.py")

    def test_flags_global_random(self):
        src = "import random\nx = random.randint(0, 10)\n"
        assert triggers("DET001", src, "workloads/synthetic.py")

    def test_flags_numpy_global_rng(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert triggers("DET001", src, "workloads/synthetic.py")

    def test_flags_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert triggers("DET001", src, "workloads/synthetic.py")

    def test_seeded_default_rng_is_fine(self):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert not triggers("DET001", src, "workloads/synthetic.py")

    def test_perf_counter_is_fine(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert not triggers("DET001", src, "sim/simulator.py")

    def test_evalx_is_exempt(self):
        src = "import time\nstamp = time.time()\n"
        assert not triggers("DET001", src, "evalx/report.py")


class TestSim001LatencyLiterals:
    def test_flags_literal_latency_assignment(self):
        src = "self.latency = 200\n"
        assert triggers("SIM001", src, "sim/simulator.py")

    def test_flags_literal_added_to_cycle_count(self):
        src = "done = cycles + 28\n"
        assert triggers("SIM001", src, "mem/bus.py")

    def test_config_sourced_latency_is_fine(self):
        src = "self.latency = config.memory_latency\n"
        assert not triggers("SIM001", src, "sim/simulator.py")

    def test_small_resets_are_fine(self):
        src = "self.latency = 0\nnext_cycle = cycle + 1\n"
        assert not triggers("SIM001", src, "sim/simulator.py")

    def test_outside_watched_dirs_is_fine(self):
        src = "memory_latency = 200\n"
        assert not triggers("SIM001", src, "core/config.py")

    def test_suppression_comment_works(self):
        src = "self.latency = 200  # repro: allow(SIM001)\n"
        assert not triggers("SIM001", src, "sim/simulator.py")


class TestGeneralHygiene:
    def test_gen001_flags_bare_except(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert triggers("GEN001", src, "core/machine.py")

    def test_gen001_typed_except_is_fine(self):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert not triggers("GEN001", src, "core/machine.py")

    def test_gen002_flags_mutable_defaults(self):
        assert triggers("GEN002", "def f(x=[]):\n    pass\n", "core/machine.py")
        assert triggers("GEN002", "def f(x=dict()):\n    pass\n", "core/machine.py")

    def test_gen002_none_default_is_fine(self):
        src = "def f(x=None):\n    pass\n"
        assert not triggers("GEN002", src, "core/machine.py")


class TestObs001StatsMutation:
    def test_flags_foreign_stats_assignment(self):
        src = "self.l2.stats = CacheStats()\n"
        assert triggers("OBS001", src, "sim/simulator.py")

    def test_flags_foreign_stats_field_increment(self):
        src = "cache.stats.hits += 1\n"
        assert triggers("OBS001", src, "evalx/runner.py")

    def test_owner_files_are_exempt(self):
        src = "self.stats.hits += 1\n"
        assert not triggers("OBS001", src, "mem/cache.py")
        assert not triggers("OBS001", src, "mem/bus.py")

    def test_obs_package_is_exempt(self):
        src = "owner.stats.hits += 1\n"
        assert not triggers("OBS001", src, "obs/adapters.py")

    def test_reading_stats_is_fine(self):
        src = "hits = self.l2.stats.hits\n"
        assert not triggers("OBS001", src, "sim/simulator.py")

    def test_non_stats_assignment_is_fine(self):
        src = "self.l2.tracer = tracer\n"
        assert not triggers("OBS001", src, "sim/simulator.py")


class TestObs002RegistryWrites:
    def test_flags_ad_hoc_counter_from_engine_code(self):
        src = "registry.counter('engine.runs')\n"
        assert triggers("OBS002", src, "fastpath/engine.py")

    def test_flags_bind_on_simulator_registry(self):
        src = "self.registry.bind('engine.runs', lambda: 1)\n"
        assert triggers("OBS002", src, "sim/simulator.py")

    def test_flags_scope_registration(self):
        src = "scope.histogram('lat', (1, 2))\n"
        assert triggers("OBS002", src, "fastpath/compiled.py")

    def test_flags_attribute_chained_registry(self):
        src = "sim.registry.gauge('x', 1.0)\n"
        assert triggers("OBS002", src, "evalx/parallel.py")

    def test_obs_package_is_exempt(self):
        src = "registry.bind('engine.runs', lambda: 1)\n"
        assert not triggers("OBS002", src, "obs/adapters.py")

    def test_reading_the_registry_is_fine(self):
        src = "snap = self.registry.snapshot()\nh = registry.get('x')\n"
        assert not triggers("OBS002", src, "sim/simulator.py")

    def test_non_registry_receivers_are_fine(self):
        src = "socket.bind(('', 80))\nconfig.counter('x')\n"
        assert not triggers("OBS002", src, "evalx/report.py")


class TestApi002KnobGrammar:
    GOOD_FACADE = (
        "def sweep(configs=None, *, events=60_000, workers=1,\n"
        "          cache_dir=None, metrics=False):\n"
        "    pass\n"
    )

    def test_canonical_facade_grammar_passes(self):
        assert not triggers("API002", self.GOOD_FACADE, "api/__init__.py")

    def test_flags_redefaulted_facade_knob(self):
        src = "def sweep(*, events=120_000):\n    pass\n"
        assert triggers("API002", src, "api/__init__.py")

    def test_flags_banned_facade_spelling(self):
        src = "def sweep(*, cache=None):\n    pass\n"
        assert triggers("API002", src, "api/__init__.py")

    def test_deprecation_shim_must_default_none(self):
        good = "def simulate(*, metrics=False, collect_metrics=None):\n    pass\n"
        bad = "def simulate(*, collect_metrics=False):\n    pass\n"
        assert not triggers("API002", good, "api/__init__.py")
        assert triggers("API002", bad, "api/__init__.py")

    def test_non_facade_functions_are_exempt(self):
        src = "def helper(*, events=5):\n    pass\n"
        assert not triggers("API002", src, "api/__init__.py")

    def test_other_files_are_exempt(self):
        src = "def sweep(*, events=5, cache=None):\n    pass\n"
        assert not triggers("API002", src, "evalx/runner.py")

    def test_flags_redefaulted_schema_field(self):
        src = "class SweepRequest:\n    events: int = 120_000\n"
        assert triggers("API002", src, "api/schema.py")

    def test_canonical_schema_fields_pass(self):
        src = ("class SweepRequest:\n"
               "    events: int = 60_000\n"
               "    workers: int = 1\n"
               "    metrics: bool = False\n")
        assert not triggers("API002", src, "api/schema.py")

    def test_flags_redefaulted_cli_flag(self):
        src = ("def main():\n"
               "    p.add_argument('--events', type=int, default=120_000)\n")
        assert triggers("API002", src, "__main__.py")

    def test_canonical_cli_flags_pass(self):
        src = ("def main():\n"
               "    p.add_argument('--events', type=int, default=60_000)\n"
               "    p.add_argument('--workers', type=int, default=1)\n"
               "    p.add_argument('--cache-dir', '--cache',\n"
               "                   dest='cache_dir', default=None)\n"
               "    p.add_argument('--metrics', action='store_true')\n")
        assert not triggers("API002", src, "__main__.py")

    def test_flags_bare_cache_flag(self):
        src = ("def main():\n"
               "    p.add_argument('--cache', default=None)\n")
        assert triggers("API002", src, "__main__.py")

    def test_cache_alias_needs_explicit_dest(self):
        src = ("def main():\n"
               "    p.add_argument('--cache-dir', '--cache', default=None)\n")
        assert triggers("API002", src, "__main__.py")

    def test_flags_non_store_true_metrics(self):
        src = ("def main():\n"
               "    p.add_argument('--metrics', default=False)\n")
        assert triggers("API002", src, "__main__.py")

    def test_flags_workers_without_default(self):
        src = ("def main():\n"
               "    p.add_argument('--workers', type=int)\n")
        assert triggers("API002", src, "__main__.py")
