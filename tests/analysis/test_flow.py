"""End-to-end tests for the FLOW rules over seeded-violation fixtures.

Each fixture is a tiny project written under ``tmp_path/repro/`` (so the
logical paths resolve as if the files lived in the real package), with
one deliberate violation per test that must surface as exactly the
expected FLOW finding — plus the repaired twin that must come back
clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main as cli_main
from repro.analysis.engine import (
    AnalyzerCrash,
    Rule,
    analyze_project,
    analyze_source,
    register,
)
from repro.analysis.engine import _REGISTRY


def project(tmp_path: Path, files: dict[str, str]) -> str:
    root = tmp_path / "repro"
    for rel, source in files.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(root)


def flow_findings(root: str, rule: str):
    return analyze_project([root], select=[rule])


# -- FLOW001: plaintext escape / unverified decrypt ---------------------------

LEAKY_ENGINE = """
class Engine:
    def read(self, paddr, tag, ctx):
        raw = self.memory.read_block(paddr)
        self.integrity.verify_data(paddr, raw, tag)
        seeds = self.scheme.seeds_for_block(paddr)
        return self._cipher.decrypt(raw, seeds)

    def leak(self, paddr, tag, ctx):
        plain = self.read(paddr, tag, ctx)
        self.memory.write_block(paddr, plain)
"""

SAFE_ENGINE = """
class Engine:
    def read(self, paddr, tag, ctx):
        raw = self.memory.read_block(paddr)
        self.integrity.verify_data(paddr, raw, tag)
        seeds = self.scheme.seeds_for_block(paddr)
        return self._cipher.decrypt(raw, seeds)

    def writeback(self, paddr, tag, ctx):
        plain = self.read(paddr, tag, ctx)
        cipher = self.encryption.encrypt_for_write(paddr, plain, ctx)
        self.memory.write_block(paddr, cipher)
"""


class TestPlaintextEscape:
    def test_interprocedural_leak_is_flagged(self, tmp_path):
        root = project(tmp_path, {"core/engine.py": LEAKY_ENGINE})
        (finding,) = flow_findings(root, "FLOW001")
        assert finding.rule == "FLOW001"
        assert "DRAM write" in finding.message
        assert "Engine.leak" in finding.message
        assert finding.trace  # witness path present

    def test_reencrypted_writeback_is_clean(self, tmp_path):
        root = project(tmp_path, {"core/engine.py": SAFE_ENGINE})
        assert flow_findings(root, "FLOW001") == []

    def test_unverified_decrypt_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "core/engine.py": """
                class Engine:
                    def read(self, paddr):
                        raw = self.memory.read_block(paddr)
                        seeds = self.scheme.seeds_for_block(paddr)
                        return self._cipher.decrypt(raw, seeds)
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW001")
        assert "never integrity-verified" in finding.message


# -- FLOW002: seed provenance -------------------------------------------------


class TestSeedProvenance:
    def test_address_derived_seed_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "osmodel/swap.py": """
                class Swapper:
                    def export(self, paddr, data):
                        seed = paddr ^ 1234
                        return self._pads.pad(seed)
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW002")
        assert finding.rule == "FLOW002"
        assert "sanctioned counter API" in finding.message

    def test_obligation_propagates_to_the_caller(self, tmp_path):
        root = project(
            tmp_path,
            {
                "core/disk.py": """
                class Disk:
                    def _mix(self, data, seed):
                        return self._pads.pad(seed)

                    def good(self, paddr, data):
                        seeds = self.scheme.seeds_for_block(paddr)
                        return self._mix(data, seeds)

                    def bad(self, paddr, data):
                        return self._mix(data, paddr * 8)
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW002")
        assert "Disk.bad" in finding.message

    def test_sanctioned_seed_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "core/disk.py": """
                class Disk:
                    def export(self, paddr, data):
                        seeds = self.scheme.seeds_for_block(paddr)
                        return self._pads.pad(seeds)
                """
            },
        )
        assert flow_findings(root, "FLOW002") == []


# -- FLOW003: nondeterminism --------------------------------------------------


class TestNondeterminism:
    def test_wall_clock_reaching_simresult_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "evalx/runner.py": """
                import time

                def run_sim(trace):
                    started = time.time()
                    return SimResult(cycles=1, wall=started)
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW003")
        assert finding.rule == "FLOW003"
        assert "SimResult" in finding.message

    def test_trace_derived_result_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "evalx/runner.py": """
                def run_sim(trace):
                    return SimResult(cycles=len(trace))
                """
            },
        )
        assert flow_findings(root, "FLOW003") == []


# -- FLOW004: memo soundness --------------------------------------------------


class TestMemoSoundness:
    def test_insert_before_verify_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "integrity/memo.py": """
                class Tree:
                    def fetch(self, addr, tag):
                        raw = self.memory.read_block(addr)
                        self._verified_macs[addr] = raw
                        self.verify_data(addr, raw, tag)
                        return raw
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW004")
        assert finding.rule == "FLOW004"
        assert "_verified_macs" in finding.message

    def test_insert_after_verify_is_clean(self, tmp_path):
        root = project(
            tmp_path,
            {
                "integrity/memo.py": """
                class Tree:
                    def fetch(self, addr, tag):
                        raw = self.memory.read_block(addr)
                        self.verify_data(addr, raw, tag)
                        self._verified_macs[addr] = raw
                        return raw
                """
            },
        )
        assert flow_findings(root, "FLOW004") == []

    def test_compare_and_raise_guard_counts_as_verification(self, tmp_path):
        root = project(
            tmp_path,
            {
                "integrity/memo.py": """
                class Tree:
                    def fetch(self, addr, tag):
                        raw = self.memory.read_block(addr)
                        if self.mac(addr, raw) != tag:
                            raise ValueError("mac mismatch")
                        self._verified_macs[addr] = raw
                        return raw
                """
            },
        )
        assert flow_findings(root, "FLOW004") == []

    def test_insert_in_unguarded_branch_is_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "integrity/memo.py": """
                class Tree:
                    def fetch(self, addr, tag, fast):
                        raw = self.memory.read_block(addr)
                        if fast:
                            self._verified_macs[addr] = raw
                        else:
                            self.verify_data(addr, raw, tag)
                        return raw
                """
            },
        )
        (finding,) = flow_findings(root, "FLOW004")
        assert finding.rule == "FLOW004"


# -- suppressions, exit codes, reports ---------------------------------------


class TestCliIntegration:
    LEAK = {
        "core/engine.py": """
        class Engine:
            def leak(self, paddr, raw, seeds):
                plain = self._cipher.decrypt(raw, seeds)
                self.memory.write_block(paddr, plain)
        """
    }

    def test_findings_exit_1(self, tmp_path, capsys):
        root = project(tmp_path, self.LEAK)
        assert cli_main([root, "--flow", "--select", "FLOW001"]) == 1
        assert "FLOW001" in capsys.readouterr().out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        root = project(tmp_path, {"core/engine.py": SAFE_ENGINE})
        assert cli_main([root, "--flow", "--select", "FLOW001"]) == 0

    def test_missing_path_exits_2(self, capsys):
        assert cli_main(["definitely/not/here.py", "--flow"]) == 2

    def test_suppression_comment_is_honoured(self, tmp_path):
        root = project(
            tmp_path,
            {
                "core/engine.py": """
                class Engine:
                    def leak(self, paddr, raw, seeds):
                        plain = self._cipher.decrypt(raw, seeds)
                        self.memory.write_block(paddr, plain)  # repro: allow(FLOW001)
                """
            },
        )
        assert cli_main([root, "--flow", "--select", "FLOW001"]) == 0
        assert cli_main([root, "--flow", "--select", "FLOW001", "--no-suppressions"]) == 1

    def test_fixtures_under_tests_are_skipped_for_library_rules(self, tmp_path):
        # the same violation under a tests/ root is an attack fixture,
        # not a library bug: FLOW (library_only) must not flag it.
        root = tmp_path / "tests"
        dest = root / "attacks" / "fixture.py"
        dest.parent.mkdir(parents=True)
        dest.write_text(textwrap.dedent(self.LEAK["core/engine.py"]), encoding="utf-8")
        assert analyze_project([str(root)], select=["FLOW001"]) == []

    def test_baseline_roundtrip(self, tmp_path, capsys):
        root = project(tmp_path, self.LEAK)
        baseline = tmp_path / "baseline.json"
        args = [root, "--flow", "--select", "FLOW001"]
        assert cli_main(args + ["--write-baseline", str(baseline)]) == 0
        accepted = json.loads(baseline.read_text())["accepted"]
        assert len(accepted) == 1 and accepted[0].startswith("FLOW001|core/engine.py|")
        assert cli_main(args + ["--baseline", str(baseline)]) == 0

    def test_sarif_report(self, tmp_path, capsys):
        root = project(tmp_path, self.LEAK)
        out = tmp_path / "report.sarif"
        code = cli_main(
            [root, "--flow", "--select", "FLOW001", "--format", "sarif", "--sarif", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "FLOW001"
        assert result["level"] == "error"
        assert "flow:" in result["message"]["text"]


class TestAnalyzerCrash:
    def test_rule_crash_reports_the_file_and_exits_2(self, tmp_path, capsys):
        @register
        class BoomRule(Rule):
            id = "TST999"
            severity = "warning"
            title = "always crashes"
            library_only = False

            def check(self, tree, ctx):
                raise RuntimeError("kaput")

        try:
            victim = tmp_path / "victim.py"
            victim.write_text("x = 1\n", encoding="utf-8")
            assert cli_main([str(victim), "--select", "TST999"]) == 2
            err = capsys.readouterr().err
            assert "TST999" in err and "victim.py" in err and "kaput" in err
        finally:
            _REGISTRY.pop("TST999")

    def test_analyze_source_wraps_rule_exceptions(self, tmp_path):
        @register
        class Boom2Rule(Rule):
            id = "TST998"
            severity = "warning"
            title = "always crashes"
            library_only = False

            def check(self, tree, ctx):
                raise ValueError("boom")

        try:
            raised = None
            try:
                analyze_source("x = 1\n", path="somefile.py", rules=[Boom2Rule()])
            except AnalyzerCrash as err:
                raised = err
            assert raised is not None
            assert raised.path == "somefile.py"
            assert raised.rule_id == "TST998"
        finally:
            _REGISTRY.pop("TST998")
