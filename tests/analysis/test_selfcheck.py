"""The linter must run clean over the library it ships with."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
LIBRARY = REPO_ROOT / "src" / "repro"


def test_library_is_clean_in_process(capsys):
    assert cli_main([str(LIBRARY)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_module_entry_point_exits_zero():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(LIBRARY), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert '"total": 0' in proc.stdout


def test_repro_analyze_subcommand_exits_zero():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(LIBRARY)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_library_flow_analysis_is_clean(capsys):
    """The whole-program FLOW rules must hold on the committed tree."""
    assert cli_main([str(LIBRARY), "--flow"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_flow_sarif_selfcheck(tmp_path):
    import json

    out = tmp_path / "flow.sarif"
    assert cli_main([str(LIBRARY), "--flow", "--sarif", str(out)]) == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    driver = payload["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    assert any(rule["id"] == "FLOW001" for rule in driver["rules"])
    assert payload["runs"][0]["results"] == []


def test_layers_table_prints_every_package(capsys):
    assert cli_main([str(LIBRARY), "--layers"]) == 0
    out = capsys.readouterr().out
    assert "layer 0" in out
    for package in ("core", "crypto", "integrity", "osmodel", "sim"):
        assert package in out


def test_tests_and_benchmarks_pass_hygiene_rules():
    """The hygiene rules (GEN/DET) cover the whole tree, not just src/."""
    targets = [str(REPO_ROOT / "tests")]
    if (REPO_ROOT / "benchmarks").is_dir():
        targets.append(str(REPO_ROOT / "benchmarks"))
    assert cli_main(targets) == 0
