"""The linter must run clean over the library it ships with."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
LIBRARY = REPO_ROOT / "src" / "repro"


def test_library_is_clean_in_process(capsys):
    assert cli_main([str(LIBRARY)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_module_entry_point_exits_zero():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(LIBRARY), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert '"total": 0' in proc.stdout


def test_repro_analyze_subcommand_exits_zero():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", str(LIBRARY)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
