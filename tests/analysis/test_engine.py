"""Engine mechanics: suppressions, rule selection, reporters, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze_source, get_rules, render_json, render_text
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import all_rules, logical_path_for, parse_suppressions

BARE_EXCEPT = "try:\n    pass\nexcept:\n    pass\n"


def run(source, rule_id="GEN001", logical="core/fixture.py", **kwargs):
    return analyze_source(
        source,
        path="fixture.py",
        logical_path=logical,
        rules=get_rules(select=[rule_id]),
        **kwargs,
    )


class TestLogicalPaths:
    def test_relative_to_repro_package(self):
        assert logical_path_for("src/repro/core/seeds.py") == "core/seeds.py"
        assert logical_path_for("/abs/src/repro/osmodel/swap.py") == "osmodel/swap.py"

    def test_loose_file_falls_back_to_name(self):
        assert logical_path_for("/tmp/scratch.py") == "scratch.py"


class TestSuppressions:
    def test_same_line_suppression(self):
        source = "try:\n    pass\nexcept:  # repro: allow(GEN001)\n    pass\n"
        assert run(source) == []

    def test_comment_only_line_covers_next_line(self):
        source = "try:\n    pass\n# repro: allow(GEN001)\nexcept:\n    pass\n"
        assert run(source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "try:\n    pass\nexcept:  # repro: allow(SEC001)\n    pass\n"
        assert [f.rule for f in run(source)] == ["GEN001"]

    def test_multiple_ids_and_wildcard(self):
        multi = parse_suppressions("x = 1  # repro: allow(SEC001, GEN001)\n")
        assert multi[1] == {"SEC001", "GEN001"}
        source = "try:\n    pass\nexcept:  # repro: allow(*)\n    pass\n"
        assert run(source) == []

    def test_no_suppressions_flag_reports_anyway(self):
        source = "try:\n    pass\nexcept:  # repro: allow(GEN001)\n    pass\n"
        findings = run(source, respect_suppressions=False)
        assert [f.rule for f in findings] == ["GEN001"]


class TestRuleSelection:
    def test_registry_has_the_domain_rules(self):
        ids = set(all_rules())
        assert {"SEC001", "SEC002", "SEC003", "DET001", "SIM001"} <= ids

    def test_select_and_ignore(self):
        only = get_rules(select=["GEN001"])
        assert [r.id for r in only] == ["GEN001"]
        without = get_rules(ignore=["GEN001"])
        assert "GEN001" not in [r.id for r in without]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            get_rules(select=["NOPE999"])

    def test_syntax_error_becomes_parse_finding(self):
        findings = analyze_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == ["PARSE"]
        assert findings[0].severity == "error"


class TestReporters:
    def test_text_mentions_location_and_summary(self):
        findings = run(BARE_EXCEPT)
        text = render_text(findings)
        assert "fixture.py:3" in text
        assert "GEN001" in text
        assert "1 finding" in text

    def test_text_clean(self):
        assert "no findings" in render_text([])

    def test_json_counts(self):
        findings = run(BARE_EXCEPT)
        payload = json.loads(render_json(findings))
        assert payload["counts"]["total"] == 1
        assert payload["counts"]["by_rule"] == {"GEN001": 1}
        assert payload["counts"]["by_severity"] == {"warning": 1}
        assert payload["findings"][0]["line"] == 3


class TestCli:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert cli_main([str(dirty)]) == 1
        assert "GEN001" in capsys.readouterr().out

    def test_exit_two_on_bad_rule_or_path(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "missing.txt")]) == 2
        some = tmp_path / "a.py"
        some.write_text("x = 1\n")
        assert cli_main([str(some), "--select", "NOPE999"]) == 2
        capsys.readouterr()

    def test_json_format_parses(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BARE_EXCEPT)
        assert cli_main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["total"] == 1

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SEC001", "SEC002", "SEC003", "DET001", "SIM001"):
            assert rule_id in out
