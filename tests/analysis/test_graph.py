"""Unit tests for the project graph: calls, resolution, imports, layers."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.engine import FileContext
from repro.analysis.graph import ProjectGraph, module_name_for


def ctx(logical: str, source: str) -> FileContext:
    return FileContext(
        f"src/repro/{logical}", textwrap.dedent(source), logical_path=logical
    )


def build(*pairs: tuple[str, str]) -> ProjectGraph:
    return ProjectGraph.build([ctx(logical, source) for logical, source in pairs])


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for("core/seeds.py") == "repro.core.seeds"

    def test_package_init(self):
        assert module_name_for("core/__init__.py") == "repro.core"

    def test_top_level(self):
        assert module_name_for("fastpath.py") == "repro.fastpath"


class TestCallExtraction:
    def test_method_call_site(self):
        graph = build(
            (
                "core/a.py",
                """
                class Engine:
                    def read(self, paddr):
                        return self.memory.read_block(paddr)
                """,
            )
        )
        (fn,) = graph.defs_named("read")
        (call,) = fn.calls
        assert call.name == "read_block"
        assert call.dotted == "self.memory.read_block"
        assert call.receiver == "memory"

    def test_nested_defs_own_their_calls(self):
        graph = build(
            (
                "core/a.py",
                """
                def outer():
                    def inner():
                        helper()
                    return inner
                """,
            )
        )
        (outer,) = graph.defs_named("outer")
        (inner,) = graph.defs_named("inner")
        assert [c.name for c in outer.calls] == []
        assert [c.name for c in inner.calls] == ["helper"]

    def test_arg_lookup_positional_keyword_and_starred(self):
        graph = build(
            (
                "core/a.py",
                """
                def caller(x, ys):
                    use(x, seed=x)
                    use(*ys)
                """,
            )
        )
        (fn,) = graph.defs_named("caller")
        plain = next(c for c in fn.calls if c.node.keywords)
        starred = next(c for c in fn.calls if not c.node.keywords)
        assert isinstance(plain.arg(0), ast.Name)
        assert isinstance(plain.arg(5, "seed"), ast.Name)
        assert starred.arg(0) is None  # *args splat is opaque


class TestResolution:
    SOURCES = (
        (
            "core/a.py",
            """
            def unique_helper(x):
                return x

            def poly(x):
                return x
            """,
        ),
        (
            "core/b.py",
            """
            def poly(y):
                return y

            def caller(v):
                return unique_helper(v)
            """,
        ),
    )

    def test_resolve_unique(self):
        graph = build(*self.SOURCES)
        fn = graph.resolve_unique("unique_helper")
        assert fn is not None and fn.module.logical == "core/a.py"

    def test_ambiguous_names_do_not_resolve(self):
        graph = build(*self.SOURCES)
        assert graph.resolve_unique("poly") is None
        assert len(graph.defs_named("poly")) == 2

    def test_callers_of(self):
        graph = build(*self.SOURCES)
        ((caller, site),) = graph.callers_of("unique_helper")
        assert caller.name == "caller"
        assert site.name == "unique_helper"

    def test_class_body_alias_widens_the_index(self):
        graph = build(
            (
                "crypto/c.py",
                """
                class Cipher:
                    def apply(self, data, seeds):
                        return data

                    encrypt = apply
                    decrypt = apply
                """,
            )
        )
        assert graph.defs_named("decrypt") == graph.defs_named("apply")
        assert graph.defs_named("encrypt") == graph.defs_named("apply")


class TestParams:
    def test_call_index_of_param_adjusts_for_self(self):
        graph = build(
            (
                "core/a.py",
                """
                class Engine:
                    def encrypt(self, data, seeds, *, audit):
                        return data
                """,
            )
        )
        (fn,) = graph.defs_named("encrypt")
        assert fn.params == ["self", "data", "seeds", "audit"]
        assert fn.call_index_of_param("data") == 0
        assert fn.call_index_of_param("seeds") == 1
        assert fn.call_index_of_param("audit") is None  # keyword-only
        assert fn.call_index_of_param("missing") is None


class TestImports:
    SOURCES = (
        ("core/machine.py", "X = 1\n"),
        (
            "osmodel/kernel.py",
            """
            from repro.core.machine import X

            def boot():
                return X
            """,
        ),
    )

    def test_module_imports(self):
        graph = build(*self.SOURCES)
        assert graph.module_imports()["osmodel/kernel.py"] == {"core/machine.py"}
        assert graph.module_imports()["core/machine.py"] == set()

    def test_package_layers_bottom_up(self):
        graph = build(*self.SOURCES)
        assert graph.package_imports()["osmodel"] == {"core"}
        layers = graph.package_layers()
        assert layers[0] == ["core"]
        assert layers[1] == ["osmodel"]
