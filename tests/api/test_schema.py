"""The versioned request/response envelope (repro.api.schema).

The schema is the service's compatibility contract: every envelope
round-trips through the wire encoding losslessly, version and shape
violations fail loudly at the boundary, and the one-release legacy
shim still reads pre-envelope payloads (with a DeprecationWarning).
"""

import json
import warnings

import pytest

from repro.api import schema


class TestEnvelopeRoundTrip:
    def test_wire_round_trip(self):
        env = schema.ok_envelope(op="ping", value=3)
        again = schema.wire_decode(schema.wire_encode(env))
        assert again == env
        assert again.payload_version == schema.PAYLOAD_VERSION

    def test_wire_encoding_is_one_line_sorted(self):
        text = schema.wire_encode(schema.ok_envelope(b=1, a=2))
        assert "\n" not in text
        assert text.index('"a"') < text.index('"b"')

    def test_rejects_wrong_version(self):
        wire = schema.ok_envelope().to_wire()
        wire["payload_version"] = schema.PAYLOAD_VERSION + 1
        with pytest.raises(schema.SchemaError):
            schema.Envelope.from_wire(wire)

    def test_rejects_missing_kind_and_body(self):
        with pytest.raises(schema.SchemaError):
            schema.Envelope.from_wire({"payload_version": schema.PAYLOAD_VERSION})

    def test_rejects_non_json_line(self):
        with pytest.raises(schema.SchemaError):
            schema.wire_decode("not json\n")


class TestRequests:
    ALL_REQUESTS = [
        schema.HelloRequest(tenant="alice"),
        schema.SimulateRequest(workload="art", config="base", events=2000),
        schema.SweepRequest(configs=("base",), benchmarks=("art", "mcf"),
                            events=2000, mac_bits=(64, None), workers=2),
        schema.TraceRequest(workload="stream", events=4000, interval=512),
        schema.PrecompileRequest(workload="chase"),
        schema.PresetsRequest(full=True),
        schema.StatusRequest(),
        schema.SubscribeRequest(progress=False),
        schema.ShutdownRequest(),
    ]

    def test_every_request_round_trips(self):
        for request in self.ALL_REQUESTS:
            wire = request.to_wire().to_wire()
            again = schema.request_from_wire(schema.Envelope.from_wire(wire))
            assert again == request, request.kind

    def test_wire_form_is_json_serializable(self):
        for request in self.ALL_REQUESTS:
            json.dumps(request.to_wire().to_wire())

    def test_unknown_body_keys_rejected(self):
        wire = schema.SimulateRequest().to_wire().to_wire()
        wire["body"]["surprise"] = 1
        with pytest.raises(schema.SchemaError):
            schema.request_from_wire(schema.Envelope.from_wire(wire))

    def test_unknown_kind_rejected(self):
        env = schema.Envelope(kind="frobnicate", body={})
        with pytest.raises(schema.SchemaError):
            schema.request_from_wire(env)

    def test_sequences_normalize_to_tuples(self):
        request = schema.SweepRequest(configs=["base"], benchmarks=["art"],
                                      mac_bits=[64])
        assert request.configs == ("base",)
        assert request.mac_bits == (64,)


class TestResponseBuilders:
    def test_result_envelope_separates_meta(self):
        env = schema.result_envelope({"cycles": 10.0}, served_from="lru", job=3)
        assert env.kind == "result"
        assert env.body["result"] == {"cycles": 10.0}
        assert env.body["served_from"] == "lru"

    def test_meta_collision_rejected(self):
        payload = {"cells": {}, "configs": [], "benchmarks": [], "events": 1}
        with pytest.raises(schema.SchemaError):
            schema.sweep_envelope(payload, events=2)

    def test_sweep_body_is_the_bare_payload(self):
        payload = {"cells": {}, "configs": [], "benchmarks": [], "events": 1}
        env = schema.sweep_envelope(payload)
        # Byte-identity contract: the body IS SweepRun.to_payload() —
        # no meta keys mixed in.
        assert env.body == payload

    def test_event_envelope_tags_job_and_tenant(self):
        env = schema.event_envelope({"event": "cell_done"}, job=2, tenant="bob")
        assert env.body == {"record": {"event": "cell_done"}, "job": 2,
                            "tenant": "bob"}

    def test_error_envelope(self):
        env = schema.error_envelope("boom", op="sweep")
        assert env.kind == "error"
        assert env.body["error"] == "boom"


class TestLegacyShim:
    def test_legacy_sweep_payload_still_reads(self):
        legacy = {"cells": {"art/base/default": {"cycles": 1.0}},
                  "configs": ["base"], "benchmarks": ["art"], "events": 2000,
                  "sweep": True}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            env = schema.read_payload(legacy)
        assert env.kind == "sweep"
        assert env.body["cells"]
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_enveloped_payload_reads_without_warning(self):
        env = schema.sweep_envelope({"cells": {}, "configs": [],
                                     "benchmarks": [], "events": 1})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = schema.read_payload(env.to_wire())
        assert again == env

    def test_unrecognized_legacy_shape_rejected(self):
        with pytest.raises(schema.SchemaError):
            schema.read_payload({"mystery": 1})
