"""The repro.api facade: equivalence with direct calls, presets, shims.

The facade's contract is *no drift*: every facade call must produce
exactly what the hand-built equivalent produces, because the CLI, the
examples, and the docs all route through it (enforced by API001).
"""

import warnings

import pytest

from repro import api
from repro.api import (
    ConfigurationError,
    MachineConfig,
    SecureMemorySystem,
    TimingSimulator,
    Trace,
    build_machine,
    load_trace,
    preset_names,
    simulate,
)
from repro.core.config import (
    _reset_deprecation_warnings,
    aise_bmt_config,
    baseline_config,
    global64_mt_config,
)

PAGE = 4096


class TestPresetGrammar:
    def test_canonical_names_all_resolve(self):
        for name in preset_names():
            config = MachineConfig.preset(name)
            assert isinstance(config, MachineConfig)

    def test_base_alias(self):
        config = MachineConfig.preset("base")
        assert config.encryption == "none"
        assert config.integrity == "none"

    def test_integrity_aliases(self):
        assert MachineConfig.preset("aise+bmt").integrity == "bonsai"
        assert MachineConfig.preset("aise+mt").integrity == "merkle"

    def test_registry_keys_pass_through(self):
        # Non-alias scheme-registry keys are valid preset components.
        assert MachineConfig.preset("aise+bonsai") == MachineConfig.preset("aise+bmt")
        assert MachineConfig.preset("phys_addr+bonsai").encryption == "phys_addr"
        assert MachineConfig.preset("aise+mac_only").integrity == "mac_only"

    def test_overrides_pass_through(self):
        config = MachineConfig.preset("aise+bmt", mac_bits=64, physical_bytes=1 << 20)
        assert config.mac_bits == 64
        assert config.physical_bytes == 1 << 20

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="no preset named"):
            MachineConfig.preset("rot13+pinky_promise")


class TestBuildMachine:
    def test_builds_booted_machine(self):
        machine = build_machine("aise+bmt", physical_bytes=4 * PAGE)
        assert isinstance(machine, SecureMemorySystem)
        machine.write_block(0, bytes(64))  # raises if unbooted
        assert machine.read_block(0) == bytes(64)

    def test_boot_false(self):
        machine = build_machine("aise+bmt", boot=False, physical_bytes=4 * PAGE)
        with pytest.raises(ConfigurationError):
            machine.read_block(0)

    def test_accepts_ready_config(self):
        config = MachineConfig.preset("aise", physical_bytes=4 * PAGE)
        machine = build_machine(config)
        assert machine.config is config

    def test_config_plus_overrides_rejected(self):
        with pytest.raises(TypeError):
            build_machine(MachineConfig.preset("aise"), physical_bytes=4 * PAGE)


class TestLoadTrace:
    def test_trace_passthrough_is_identity(self):
        trace = load_trace("stream", 500)
        assert load_trace(trace) is trace

    def test_synthetics_and_spec(self):
        for name in ("stream", "chase", "resident", "art"):
            trace = load_trace(name, 400)
            assert isinstance(trace, Trace)
            assert len(trace) == 400

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            load_trace("quake3", 100)


class TestSimulateEquivalence:
    def test_matches_hand_built_simulator(self):
        trace = load_trace("art", 4000)
        via_facade = simulate(trace, "aise+bmt")
        by_hand = TimingSimulator(MachineConfig.preset("aise+bmt"), overlap=0.7).run(
            trace, label="aise+bmt", warmup=0.25
        )
        assert via_facade.to_dict() == by_hand.to_dict()

    def test_label_defaults_to_preset(self):
        result = simulate(load_trace("art", 2000), "global64+mt")
        assert result.config_label == "global64+mt"

    def test_sweep_rejects_unknown_labels_before_running(self):
        with pytest.raises(ValueError, match="unknown configs"):
            api.sweep(configs=["aise+bmt", "nope"], benchmarks=["art"], events=100)
        with pytest.raises(ValueError, match="unknown benchmarks"):
            api.sweep(configs=["base"], benchmarks=["quake3"], events=100)


class TestFacadeSurface:
    def test_all_exports_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_package_root_reexports_facade(self):
        import repro

        assert repro.api is api
        assert repro.build_machine is build_machine

    def test_preset_names_cover_sweep_registry(self):
        from repro.evalx.runner import CONFIGS

        assert tuple(CONFIGS) == preset_names()


class TestDeprecatedShims:
    def test_shims_delegate_to_preset(self):
        _reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert baseline_config() == MachineConfig.preset("base")
            assert aise_bmt_config(mac_bits=64) == MachineConfig.preset(
                "aise+bmt", mac_bits=64
            )
            assert global64_mt_config() == MachineConfig.preset("global64+mt")

    def test_each_shim_warns_exactly_once_per_process(self):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            baseline_config()
            baseline_config()
            aise_bmt_config()
        messages = [str(w.message) for w in caught if w.category is DeprecationWarning]
        assert len(messages) == 2
        assert any("baseline_config" in m for m in messages)
        assert any("aise_bmt_config" in m for m in messages)
        _reset_deprecation_warnings()


class TestPrecompile:
    def test_precompile_warms_the_lowering(self):
        summary = api.precompile("art", "aise+bmt", events=3000)
        assert summary["events"] == 3000
        assert summary["misses"] > 0
        assert summary["patterns"] > 0
        assert summary["cached"] is False
        # Same trace, same geometry: memo hit.
        again = api.precompile(summary["trace"], "aise+bmt")
        assert again["cached"] is True
        assert again["misses"] == summary["misses"]

    def test_precompiled_trace_simulates_identically(self):
        summary = api.precompile("gcc", "aise+bmt", events=3000)
        warmed = api.simulate(summary["trace"], "aise+bmt")
        fresh = api.simulate("gcc", "aise+bmt", events=3000)
        assert warmed == fresh


class TestFullPresetNames:
    def test_canonical_names_come_first(self):
        full = api.preset_names(full=True)
        assert full[: len(preset_names())] == preset_names()

    def test_surfaces_registry_valid_combos(self):
        full = api.preset_names(full=True)
        assert "aise+bmt_lazy" in full
        assert "base+loghash" in full

    def test_every_full_name_resolves(self):
        for name in api.preset_names(full=True):
            assert isinstance(MachineConfig.preset(name), MachineConfig)

    def test_no_duplicate_resolved_configs(self):
        resolved = [
            (MachineConfig.preset(n).encryption, MachineConfig.preset(n).integrity)
            for n in api.preset_names(full=True)
        ]
        assert len(resolved) == len(set(resolved))


class TestKnobGrammar:
    """One knob grammar across the facade (mirrors the API002 lint)."""

    KNOB_DEFAULTS = {"events": 60_000, "workers": 1, "cache_dir": None,
                     "metrics": False, "overlap": 0.7, "warmup": 0.25}

    @pytest.mark.parametrize("fn", [api.simulate, api.sweep, api.trace,
                                    api.precompile])
    def test_shared_knobs_default_identically(self, fn):
        import inspect

        for name, param in inspect.signature(fn).parameters.items():
            if name in self.KNOB_DEFAULTS:
                assert param.default == self.KNOB_DEFAULTS[name], \
                    f"{fn.__name__}({name}=...)"

    def test_schema_requests_share_the_grammar(self):
        import dataclasses

        from repro.api import schema

        for cls in (schema.SimulateRequest, schema.SweepRequest,
                    schema.TraceRequest, schema.PrecompileRequest):
            for field in dataclasses.fields(cls):
                if field.name in self.KNOB_DEFAULTS:
                    assert field.default == self.KNOB_DEFAULTS[field.name], \
                        f"{cls.__name__}.{field.name}"
