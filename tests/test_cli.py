"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestStorageCommand:
    def test_default_prints_headline_number(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "21.55%" in out

    def test_custom_configuration(self, capsys):
        assert main(["storage", "--encryption", "global64", "--integrity", "merkle",
                     "--mac-bits", "256"]) == 0
        out = capsys.readouterr().out
        assert "55.71%" in out


class TestAttacksCommand:
    def test_bmt_detects_all(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert out.count("DETECTED") == 4
        assert "MISSED" not in out

    def test_mac_only_misses_replay(self, capsys):
        assert main(["attacks", "--integrity", "mac_only"]) == 0
        out = capsys.readouterr().out
        assert "MISSED" in out


class TestSweepCommand:
    ARGS = ["sweep", "--events", "2000", "--benchmarks", "gzip", "eon",
            "--configs", "base", "aise+bmt"]

    def test_writes_deterministic_json(self, tmp_path):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        assert main([*self.ARGS, "--out", str(serial)]) == 0
        assert main([*self.ARGS, "--workers", "2",
                     "--cache", str(tmp_path / "cache"), "--out", str(pooled)]) == 0
        # The whole point: parallel output byte-equals serial output.
        assert pooled.read_text() == serial.read_text()
        import json

        cells = json.loads(serial.read_text())["cells"]
        assert len(cells) == 4
        assert "gzip/aise+bmt/default" in cells

    def test_cached_rerun_matches(self, tmp_path):
        out1 = tmp_path / "one.json"
        out2 = tmp_path / "two.json"
        cache = str(tmp_path / "cache")
        assert main([*self.ARGS, "--cache", cache, "--out", str(out1)]) == 0
        assert main([*self.ARGS, "--cache", cache, "--out", str(out2)]) == 0
        assert out1.read_text() == out2.read_text()

    def test_rejects_unknown_config(self, capsys):
        assert main(["sweep", "--configs", "quantum"]) == 2

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["sweep", "--benchmarks", "doom3"]) == 2


class TestSimulateCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["simulate", "--benchmark", "gzip", "--events", "5000"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "L2 miss rate" in out

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["simulate", "--benchmark", "doom3"]) == 2


class TestReportCommand:
    def test_subset_report(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["report", "--events", "3000", "--figures", "9",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 2" in text
        assert "Figure 9" in text
        assert "Figure 6" not in text  # filtered out


class TestArgumentErrors:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportDataExport:
    def test_data_dir_exports_json_and_csv(self, tmp_path):
        import json

        data_dir = tmp_path / "data"
        assert main(["report", "--events", "2500", "--figures", "9",
                     "--out", str(tmp_path / "r.txt"),
                     "--data-dir", str(data_dir)]) == 0
        fig = json.loads((data_dir / "figure9.json").read_text())
        assert "aise+bmt" in fig["series"]
        table2_csv = (data_dir / "table2.csv").read_text()
        assert "21.55" in table2_csv
        assert not (data_dir / "figure6.json").exists()  # filtered out
