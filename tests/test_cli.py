"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestStorageCommand:
    def test_default_prints_headline_number(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "21.55%" in out

    def test_custom_configuration(self, capsys):
        assert main(["storage", "--encryption", "global64", "--integrity", "merkle",
                     "--mac-bits", "256"]) == 0
        out = capsys.readouterr().out
        assert "55.71%" in out


class TestAttacksCommand:
    def test_bmt_detects_all(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert out.count("DETECTED") == 4
        assert "MISSED" not in out

    def test_mac_only_misses_replay(self, capsys):
        assert main(["attacks", "--integrity", "mac_only"]) == 0
        out = capsys.readouterr().out
        assert "MISSED" in out


class TestSweepCommand:
    ARGS = ["sweep", "--events", "2000", "--benchmarks", "gzip", "eon",
            "--configs", "base", "aise+bmt"]

    def test_writes_deterministic_json(self, tmp_path):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        assert main([*self.ARGS, "--out", str(serial)]) == 0
        assert main([*self.ARGS, "--workers", "2",
                     "--cache", str(tmp_path / "cache"), "--out", str(pooled)]) == 0
        # The whole point: parallel output byte-equals serial output.
        assert pooled.read_text() == serial.read_text()
        import json

        cells = json.loads(serial.read_text())["cells"]
        assert len(cells) == 4
        assert "gzip/aise+bmt/default" in cells

    def test_cached_rerun_matches(self, tmp_path):
        out1 = tmp_path / "one.json"
        out2 = tmp_path / "two.json"
        cache = str(tmp_path / "cache")
        assert main([*self.ARGS, "--cache", cache, "--out", str(out1)]) == 0
        assert main([*self.ARGS, "--cache", cache, "--out", str(out2)]) == 0
        assert out1.read_text() == out2.read_text()

    def test_rejects_unknown_config(self, capsys):
        assert main(["sweep", "--configs", "quantum"]) == 2

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["sweep", "--benchmarks", "doom3"]) == 2

    def test_live_and_fleet_leave_output_byte_identical(self, tmp_path):
        import json

        from repro.obs import fleet

        plain = tmp_path / "plain.json"
        observed = tmp_path / "observed.json"
        progress = tmp_path / "progress.jsonl"
        report = tmp_path / "fleet.json"
        trace = tmp_path / "fleet-trace.json"
        assert main([*self.ARGS, "--out", str(plain)]) == 0
        assert main([*self.ARGS, "--live", "--live-jsonl", str(progress),
                     "--fleet", str(report), "--fleet-chrome", str(trace),
                     "--out", str(observed)]) == 0
        assert observed.read_text() == plain.read_text()

        lines = progress.read_text().splitlines()
        assert fleet.validate_progress_jsonl(lines) == []
        doc = json.loads(report.read_text())
        assert fleet.validate_fleet_payload(doc) == []
        assert doc["total"] == 4

        from repro.obs.chrome import validate_chrome_trace

        assert validate_chrome_trace(json.loads(trace.read_text())) == []


class TestMetricsCommand:
    def fleet_report(self, tmp_path):
        report = tmp_path / "fleet.json"
        assert main(["sweep", "--events", "2000", "--benchmarks", "gzip",
                     "--configs", "base", "aise+bmt",
                     "--fleet", str(report),
                     "--out", str(tmp_path / "sweep.json")]) == 0
        return report

    def test_prometheus_export_validates(self, tmp_path):
        from repro.obs.prom import validate_prometheus_text

        report = self.fleet_report(tmp_path)
        out = tmp_path / "metrics.prom"
        assert main(["metrics", str(report), "--check", "--out", str(out)]) == 0
        text = out.read_text()
        assert validate_prometheus_text(text) == []
        assert "repro_bus_transfers" in text

    def test_json_format(self, tmp_path, capsys):
        import json

        report = self.fleet_report(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(report), "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "bus.transfers" in snap

    def test_rejects_unreadable_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["metrics", str(bad)]) == 2


class TestSimulateCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["simulate", "--benchmark", "gzip", "--events", "5000"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "L2 miss rate" in out

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["simulate", "--benchmark", "doom3"]) == 2


class TestReportCommand:
    def test_subset_report(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["report", "--events", "3000", "--figures", "9",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 2" in text
        assert "Figure 9" in text
        assert "Figure 6" not in text  # filtered out


class TestArgumentErrors:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportDataExport:
    def test_data_dir_exports_json_and_csv(self, tmp_path):
        import json

        data_dir = tmp_path / "data"
        assert main(["report", "--events", "2500", "--figures", "9",
                     "--out", str(tmp_path / "r.txt"),
                     "--data-dir", str(data_dir)]) == 0
        fig = json.loads((data_dir / "figure9.json").read_text())
        assert "aise+bmt" in fig["series"]
        table2_csv = (data_dir / "table2.csv").read_text()
        assert "21.55" in table2_csv
        assert not (data_dir / "figure6.json").exists()  # filtered out


class TestTraceCommand:
    def trace_args(self, tmp_path, stem):
        return ["trace", "stream", "--config", "aise+bmt",
                "--events", "6000", "--interval", "512",
                "--out", str(tmp_path / f"{stem}.json"),
                "--jsonl", str(tmp_path / f"{stem}.jsonl"),
                "--snapshots", str(tmp_path / f"{stem}-snap.json")]

    def test_emits_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.chrome import validate_chrome_trace

        assert main(self.trace_args(tmp_path, "t")) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "cycles" in out
        doc = json.loads((tmp_path / "t.json").read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e.get("name") == "l2_miss" for e in doc["traceEvents"])

    def test_reruns_are_byte_identical(self, tmp_path):
        assert main(self.trace_args(tmp_path, "a")) == 0
        assert main(self.trace_args(tmp_path, "b")) == 0
        for suffix in (".json", ".jsonl", "-snap.json"):
            first = (tmp_path / f"a{suffix}").read_bytes()
            second = (tmp_path / f"b{suffix}").read_bytes()
            assert first == second, suffix

    def test_snapshots_carry_samples_and_result(self, tmp_path):
        import json

        assert main(self.trace_args(tmp_path, "s")) == 0
        snap = json.loads((tmp_path / "s-snap.json").read_text())
        assert snap["workload"] == "stream"
        assert snap["interval"] == 512
        assert len(snap["samples"]) >= 2
        final = snap["samples"][-1]
        assert final["sim.demand_misses"] == snap["result"]["l2_misses"]

    def test_spec_workloads_accepted(self, tmp_path):
        assert main(["trace", "gzip", "--events", "2000",
                     "--out", str(tmp_path / "g.json")]) == 0

    def test_rejects_unknown_workload(self, tmp_path):
        assert main(["trace", "doom3",
                     "--out", str(tmp_path / "x.json")]) == 2

    def test_rejects_unknown_config(self, tmp_path):
        assert main(["trace", "stream", "--config", "quantum",
                     "--out", str(tmp_path / "x.json")]) == 2

    def test_verbose_flag_accepted(self, tmp_path):
        assert main(["-v", "trace", "stream", "--events", "2000",
                     "--out", str(tmp_path / "v.json")]) == 0

    def test_disabled_mode_left_behind(self, tmp_path):
        import repro.obs as obs

        assert main(self.trace_args(tmp_path, "d")) == 0
        assert not obs.enabled()  # tracing is scoped to the command


class TestPrecompileCommand:
    def test_reports_pattern_mix(self, capsys):
        assert main(["precompile", "stream", "--events", "2000"]) == 0
        out = capsys.readouterr().out
        assert "workload : stream" in out
        assert "patterns" in out

    def test_json_envelope(self, capsys):
        import json

        assert main(["precompile", "stream", "--events", "2000",
                     "--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["payload_version"] == 1
        assert wire["kind"] == "ok"
        assert wire["body"]["op"] == "precompile"

    def test_rejects_unknown_workload(self, capsys):
        assert main(["precompile", "nope"]) == 2


class TestJsonEnvelopes:
    def test_simulate_json_is_a_versioned_envelope(self, capsys):
        import json

        assert main(["simulate", "--benchmark", "gzip", "--events", "2000",
                     "--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["kind"] == "result"
        assert wire["payload_version"] == 1
        assert wire["body"]["result"]["cycles"] > 0

    def test_sweep_json_body_is_the_payload(self, capsys):
        import json

        assert main(["sweep", "--events", "2000", "--benchmarks", "gzip",
                     "--configs", "base", "--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["kind"] == "sweep"
        assert "gzip/base/default" in wire["body"]["cells"]

    def test_cache_dir_spelling_and_alias_agree(self, tmp_path):
        args = ["sweep", "--events", "2000", "--benchmarks", "gzip",
                "--configs", "base"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*args, "--cache-dir", str(tmp_path / "c1"),
                     "--out", str(a)]) == 0
        assert main([*args, "--cache", str(tmp_path / "c2"),
                     "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()


class TestServeSubmitCommands:
    def test_submit_round_trip_against_live_server(self, capsys, tmp_path):
        import json

        from repro.service import serve_background

        with serve_background() as handle:
            port = ["--port", str(handle.port)]
            assert main(["submit", "status", *port]) == 0
            wire = json.loads(capsys.readouterr().out)
            assert wire["kind"] == "status"

            out = tmp_path / "cells.json"
            assert main(["submit", "sweep", *port, "--benchmarks", "gzip",
                         "--configs", "base", "--events", "2000",
                         "--out", str(out)]) == 0
            assert main(["sweep", "--events", "2000", "--benchmarks", "gzip",
                         "--configs", "base",
                         "--out", str(tmp_path / "cold.json")]) == 0
            # The service-written file byte-equals the cold CLI sweep.
            assert out.read_text() == (tmp_path / "cold.json").read_text()

    def test_submit_against_dead_port_fails_cleanly(self):
        assert main(["submit", "status", "--port", "1"]) == 2
