"""The dedicated Merkle-node cache ablation (vs the paper's shared L2)."""

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import spec_trace


def mt_config(node_kb: int | None = None) -> MachineConfig:
    node = CacheConfig(node_kb * 1024, 8, 10) if node_kb else None
    return MachineConfig(encryption="aise", integrity="merkle", node_cache=node)


@pytest.fixture(scope="module")
def trace():
    return spec_trace("art", 25_000)


class TestDedicatedNodeCache:
    def test_removes_l2_pollution(self, trace):
        shared = TimingSimulator(mt_config()).run(trace)
        dedicated = TimingSimulator(mt_config(node_kb=256)).run(trace)
        assert shared.l2_merkle_fraction > 0.2
        assert dedicated.l2_merkle_fraction == 0.0
        assert dedicated.l2_data_fraction == pytest.approx(1.0)

    def test_restores_data_miss_rate(self, trace):
        from repro.core.config import baseline_config

        base = TimingSimulator(baseline_config()).run(trace)
        dedicated = TimingSimulator(mt_config(node_kb=256)).run(trace)
        assert dedicated.l2_miss_rate == pytest.approx(base.l2_miss_rate, abs=0.01)

    def test_big_dedicated_cache_beats_shared_l2(self, trace):
        """With 256KB of private node storage, MT sheds its pollution
        penalty — quantifying what the shared-L2 design costs."""
        shared = TimingSimulator(mt_config()).run(trace)
        dedicated = TimingSimulator(mt_config(node_kb=256)).run(trace)
        assert dedicated.cycles < shared.cycles

    def test_tiny_dedicated_cache_still_functions(self, trace):
        """An 8KB node cache thrashes but stays correct — more node
        fetches, never a wrong result (it's a timing structure)."""
        tiny = TimingSimulator(mt_config(node_kb=8))
        big = TimingSimulator(mt_config(node_kb=256))
        tiny_result = tiny.run(trace)
        big_result = big.run(trace)
        assert (tiny.bus.stats.transfers_by_kind.get("merkle", 0)
                > big.bus.stats.transfers_by_kind.get("merkle", 0))
        assert tiny_result.cycles >= big_result.cycles

    def test_bmt_plus_node_cache_changes_little(self, trace):
        """BMT's bonsai tree is already tiny; a dedicated cache for it is
        nearly a no-op — the paper's point that shrinking the tree beats
        provisioning hardware for a big one."""
        from repro.core.config import aise_bmt_config
        from dataclasses import replace

        default = TimingSimulator(aise_bmt_config()).run(trace)
        with_cache = TimingSimulator(
            replace(aise_bmt_config(), node_cache=CacheConfig(32 * 1024, 8, 10))
        ).run(trace)
        assert with_cache.cycles == pytest.approx(default.cycles, rel=0.02)
