"""Deeper timing-model mechanics: writeback chains, metadata dirtiness,
occupancy sampling, and cross-configuration invariants."""

import pytest

from repro.core.config import MachineConfig, aise_bmt_config, baseline_config
from repro.sim.simulator import TimingSimulator
from repro.sim.trace import OP_READ, OP_WRITE, Trace
from repro.workloads.synthetic import WorkloadProfile, generate_trace


def write_stream(blocks: int, stride: int = 64) -> Trace:
    return Trace.from_lists([(0, OP_WRITE, i * stride) for i in range(blocks)])


class TestWritebackChains:
    def test_dirty_data_eviction_writes_counters(self):
        """Evicted dirty data bumps its counter: the counter cache sees
        write traffic and eventually writes counter blocks back."""
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="none"))
        # 40k distinct dirty blocks >> L2: lots of dirty evictions across
        # many pages >> counter cache: dirty counter evictions too.
        sim.run(write_stream(40_000), warmup=0.0)
        kinds = sim.bus.stats.transfers_by_kind
        assert kinds.get("data_wb", 0) > 0
        assert kinds.get("counter_wb", 0) > 0

    def test_counter_writebacks_update_the_tree(self):
        sim = TimingSimulator(aise_bmt_config())
        sim.run(write_stream(40_000), warmup=0.0)
        kinds = sim.bus.stats.transfers_by_kind
        # Dirty counter blocks leave through the bonsai tree: node
        # fetches (merkle) and eventually dirty node writebacks.
        assert kinds.get("counter_wb", 0) > 0
        assert kinds.get("merkle", 0) > 0

    def test_mac_updates_on_writeback(self):
        sim = TimingSimulator(aise_bmt_config())
        sim.run(write_stream(40_000), warmup=0.0)
        assert sim.bus.stats.transfers_by_kind.get("mac_wb", 0) > 0

    def test_mt_leaf_updates_become_dirty_nodes(self):
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="merkle"))
        sim.run(write_stream(40_000), warmup=0.0)
        assert sim.bus.stats.transfers_by_kind.get("merkle_wb", 0) > 0


class TestMetadataAddressing:
    def test_aise_counter_block_shared_by_page(self):
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="none"))
        assert sim._counter_block_addr(0) == sim._counter_block_addr(4095)
        assert sim._counter_block_addr(4096) == sim._counter_block_addr(0) + 64

    def test_global64_counter_block_spans_8_blocks(self):
        sim = TimingSimulator(MachineConfig(encryption="global64", integrity="none"))
        assert sim._counter_block_addr(0) == sim._counter_block_addr(511)
        assert sim._counter_block_addr(512) == sim._counter_block_addr(0) + 64

    def test_mac_block_addressing(self):
        sim = TimingSimulator(aise_bmt_config())
        # 128-bit MACs: 4 MACs per 64B block.
        assert sim._mac_block_addr(0) == sim._mac_block_addr(3 * 64)
        assert sim._mac_block_addr(4 * 64) == sim._mac_block_addr(0) + 64

    def test_metadata_lives_outside_data_region(self):
        sim = TimingSimulator(aise_bmt_config())
        assert sim._counter_block_addr(0) >= sim.layout.counter_base
        assert sim._mac_block_addr(0) >= sim.layout.mac_base


class TestStatsHygiene:
    def test_metadata_lookups_not_counted_as_demand(self):
        """The reported miss rate is the paper's demand-only local rate."""
        trace = Trace.from_lists([(0, OP_READ, i * 64) for i in range(500)])
        base = TimingSimulator(baseline_config())
        base.run(trace, warmup=0.0)
        mt = TimingSimulator(MachineConfig(encryption="aise", integrity="merkle"))
        result = mt.run(trace, warmup=0.0)
        assert result.l2_accesses == 500  # not inflated by node lookups
        assert result.l2_misses == 500

    def test_occupancy_fractions_sum_to_one(self):
        profile = WorkloadProfile("w", hot_bytes=512 * 1024, cold_bytes=2 << 20,
                                  hot_fraction=0.5, write_fraction=0.3, mean_gap=10)
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="merkle"))
        result = sim.run(generate_trace(profile, 20_000, seed=3))
        assert result.l2_data_fraction + result.l2_merkle_fraction == pytest.approx(1.0, abs=0.02)

    def test_zero_length_trace(self):
        result = TimingSimulator(baseline_config()).run(Trace.from_lists([]), warmup=0.0)
        assert result.cycles == 0
        assert result.l2_miss_rate == 0.0

    def test_full_warmup_yields_empty_measurement(self):
        trace = Trace.from_lists([(1, OP_READ, 0)] * 100)
        result = TimingSimulator(baseline_config()).run(trace, warmup=1.0)
        assert result.l2_accesses == 0
        assert result.instructions == 0


class TestCrossConfigInvariants:
    @pytest.fixture(scope="class")
    def trace(self):
        profile = WorkloadProfile("w", hot_bytes=512 * 1024, cold_bytes=2 << 20,
                                  hot_fraction=0.6, write_fraction=0.3, mean_gap=12)
        return generate_trace(profile, 15_000, seed=9)

    def test_base_has_no_metadata_traffic(self, trace):
        sim = TimingSimulator(baseline_config())
        sim.run(trace)
        kinds = sim.bus.stats.transfers_by_kind
        assert set(kinds) <= {"data", "data_wb"}

    def test_encryption_only_adds_counter_traffic_only(self, trace):
        sim = TimingSimulator(MachineConfig(encryption="aise", integrity="none"))
        sim.run(trace)
        kinds = sim.bus.stats.transfers_by_kind
        assert "merkle" not in kinds and "mac" not in kinds

    def test_demand_misses_identical_for_non_polluting_configs(self, trace):
        """Encryption-only and BMT configs don't perturb the data stream's
        L2 behaviour (counters live in their own cache; MACs uncached)."""
        base = TimingSimulator(baseline_config()).run(trace)
        enc = TimingSimulator(MachineConfig(encryption="aise", integrity="none")).run(trace)
        assert enc.l2_misses == base.l2_misses

    def test_identical_traces_identical_results(self, trace):
        a = TimingSimulator(aise_bmt_config()).run(trace)
        b = TimingSimulator(aise_bmt_config()).run(trace)
        assert a.cycles == b.cycles
        assert a.bus_utilization == b.bus_utilization


class TestVirtualAddressStorageCost:
    """Table 1's 'VA storage in L2' row: the virtual-address scheme loses
    L2 capacity to per-line virtual-address fields."""

    def test_l2_capacity_reduced(self):
        from repro.core.config import MachineConfig

        virt = TimingSimulator(MachineConfig(encryption="virt_addr", integrity="none"))
        phys = TimingSimulator(MachineConfig(encryption="phys_addr", integrity="none"))
        assert virt.l2.size_bytes < phys.l2.size_bytes
        assert virt.l2.size_bytes >= phys.l2.size_bytes * 0.93  # ~6% tax

    def test_capacity_tax_shows_up_on_l2_sized_working_sets(self):
        from repro.core.config import MachineConfig
        from repro.workloads.synthetic import WorkloadProfile, generate_trace

        profile = WorkloadProfile("edge", hot_bytes=1008 * 1024, cold_bytes=64 * 1024,
                                  hot_fraction=0.97, write_fraction=0.2, mean_gap=15)
        trace = generate_trace(profile, 30_000, seed=21)
        virt = TimingSimulator(MachineConfig(encryption="virt_addr", integrity="none")).run(trace)
        phys = TimingSimulator(MachineConfig(encryption="phys_addr", integrity="none")).run(trace)
        assert virt.l2_misses >= phys.l2_misses
