"""The section-2 motivation: direct encryption's serialized latency.

"the long latency of decryption is added directly to the memory fetch
latency, resulting in execution time overheads of up to 35% (almost 17%
on average)" — the historical numbers that pushed the field to
counter mode. The timing model should land in that regime.
"""

import pytest

from repro.core.config import MachineConfig, baseline_config
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import MEMORY_BOUND, SPEC2K_BENCHMARKS, spec_trace

EVENTS = 50_000


def overhead(bench: str, config: MachineConfig) -> float:
    trace = spec_trace(bench, EVENTS)
    base = TimingSimulator(baseline_config()).run(trace)
    return TimingSimulator(config).run(trace).overhead_vs(base)


class TestDirectEncryptionCost:
    def test_average_in_the_paper_regime(self):
        """Across a representative mix, direct encryption averages in the
        cited ~10-25% band (paper: "almost 17% on average")."""
        sample = ("art", "mcf", "swim", "gcc", "gzip", "crafty", "equake", "vpr")
        direct = MachineConfig(encryption="direct", integrity="none")
        values = [overhead(b, direct) for b in sample]
        average = sum(values) / len(values)
        assert 0.08 < average < 0.35

    def test_memory_bound_worst_cases_are_severe(self):
        """Up to ~35% on memory-bound workloads (paper section 2)."""
        direct = MachineConfig(encryption="direct", integrity="none")
        worst = max(overhead(b, direct) for b in ("art", "mcf", "swim"))
        assert worst > 0.20

    def test_counter_mode_removes_most_of_it(self):
        """The whole point of counter mode: AISE costs a small fraction of
        direct encryption on every benchmark."""
        direct = MachineConfig(encryption="direct", integrity="none")
        aise = MachineConfig(encryption="aise", integrity="none")
        for bench in ("art", "swim", "gcc"):
            d = overhead(bench, direct)
            a = overhead(bench, aise)
            assert a < d / 4, bench

    def test_direct_cost_tracks_miss_rate(self):
        """The exposure is per-miss, so memory-bound >> resident."""
        direct = MachineConfig(encryption="direct", integrity="none")
        assert overhead("art", direct) > overhead("crafty", direct) * 2
