"""Trace containers and generators."""

import numpy as np
import pytest

from repro.sim.trace import OP_READ, OP_WRITE, Trace


def simple_trace():
    return Trace.from_lists([(10, OP_READ, 0), (5, OP_WRITE, 64), (3, OP_READ, 128)])


class TestTrace:
    def test_from_lists(self):
        trace = simple_trace()
        assert len(trace) == 3
        assert trace.instructions == 18 + 3

    def test_empty(self):
        trace = Trace.from_lists([])
        assert len(trace) == 0
        assert trace.write_fraction == 0.0
        assert trace.footprint_bytes == 0

    def test_write_fraction(self):
        assert simple_trace().write_fraction == pytest.approx(1 / 3)

    def test_footprint_counts_unique_blocks(self):
        trace = Trace.from_lists([(1, 0, 0), (1, 0, 32), (1, 0, 64)])
        assert trace.footprint_bytes == 128  # blocks 0 and 1

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            Trace(gaps=np.zeros(2, np.uint32), ops=np.zeros(3, np.uint8),
                  addresses=np.zeros(2, np.uint64))

    def test_aligned(self):
        trace = Trace.from_lists([(1, 0, 100)]).aligned()
        assert trace.addresses[0] == 64

    def test_concat(self):
        joined = simple_trace().concat(simple_trace())
        assert len(joined) == 6
