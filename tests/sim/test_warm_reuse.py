"""Warm-state reuse across runs: bus-time rebase and statistics hygiene.

Regression tests for two carryover bugs in the timing core:

* a second ``run()`` on the same simulator restarted the clock at 0.0
  while the bus kept the previous trace's final ``free_at`` timestamp,
  so every early transfer queued behind phantom traffic;
* the warmup-boundary statistics reset skipped the dedicated node
  cache, so node-cache configurations reported warmup-polluted
  hit/miss/occupancy numbers.
"""

import pytest

from repro.core.config import CacheConfig, MachineConfig, baseline_config
from repro.mem.bus import MemoryBus
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import spec_trace
from repro.workloads.synthetic import streaming_trace


def node_cache_config() -> MachineConfig:
    return MachineConfig(encryption="aise", integrity="merkle",
                         node_cache=CacheConfig(64 * 1024, 8, 10))


class TestBusRebase:
    def test_second_run_not_queued_behind_phantom_traffic(self):
        """Re-running the same trace on warm caches must not be slower.

        Before the fix, the first transfers of run 2 queued behind the
        bus's final run-1 timestamp, inflating cycles by roughly the
        whole previous run."""
        trace = streaming_trace(4000, 4 << 20, seed=5)
        sim = TimingSimulator(baseline_config())
        first = sim.run(trace, warmup=0.0)
        assert sim.bus.free_at > 0.0  # run 1 left the bus clock advanced
        second = sim.run(trace, warmup=0.0)
        # Warm caches: the rerun can only be as fast or faster.
        assert second.cycles <= first.cycles
        assert second.l2_misses <= first.l2_misses

    def test_back_to_back_runs_match_concatenated_trace(self):
        """run(A); run(B) must time B exactly like the measured half of
        one continuous A+B stream (same warm caches, no phantom bus
        backlog) — the semantics 'rebase time, keep state' guarantees."""
        trace_a = streaming_trace(3000, 2 << 20, seed=7)
        trace_b = streaming_trace(3000, 2 << 20, seed=8)

        continuous = TimingSimulator(baseline_config())
        reference = continuous.run(trace_a.concat(trace_b), warmup=0.5)

        sim = TimingSimulator(baseline_config())
        sim.run(trace_a, warmup=0.0)
        replay = sim.run(trace_b, warmup=0.0)

        # Identical cache state at the boundary; the only divergence is
        # the (bounded, tiny) bus tail in flight at the seam.
        assert replay.l2_misses == reference.l2_misses
        assert replay.cycles == pytest.approx(reference.cycles, rel=0.02)

    def test_rebase_keeps_stats(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0.0)
        bus.rebase(0.0)
        assert bus.free_at == 0.0
        assert bus.stats.transfers == 1  # rebase moves time, not history


class TestNodeCacheStatsReset:
    def test_warmup_resets_node_cache_stats(self):
        """With warmup covering the whole trace, every statistic —
        including the dedicated node cache's — must read zero."""
        trace = spec_trace("art", 8_000)
        sim = TimingSimulator(node_cache_config())
        sim.run(trace, warmup=1.0)
        assert sim.node_cache.stats.accesses == 0
        assert sim.node_cache.stats.misses == 0
        assert sim.node_cache.stats.writebacks == 0

    def test_node_cache_stats_exclude_warmup(self):
        """Post-warmup node-cache traffic must be a strict subset of the
        whole-trace traffic (the warm fraction's lookups are excluded)."""
        trace = spec_trace("art", 8_000)
        cold = TimingSimulator(node_cache_config())
        cold.run(trace, warmup=0.0)
        warmed = TimingSimulator(node_cache_config())
        warmed.run(trace, warmup=0.5)
        assert 0 < warmed.node_cache.stats.accesses < cold.node_cache.stats.accesses

    def test_second_run_stats_are_fresh(self):
        """Statistics never leak from one run() into the next."""
        trace = spec_trace("art", 5_000)
        sim = TimingSimulator(node_cache_config())
        sim.run(trace, warmup=0.0)
        first = sim.node_cache.stats.accesses
        sim.run(trace, warmup=0.0)
        assert sim.node_cache.stats.accesses <= first


class TestBusFloatTime:
    def test_fractional_request_times(self):
        bus = MemoryBus(cycles_per_block=16)
        start, end = bus.request(10.5)
        assert (start, end) == (10.5, 26.5)
        start, end = bus.request(12.25)  # queues behind the first
        assert start == 26.5
        assert isinstance(bus.stats.queue_cycles, float)
        assert bus.stats.queue_cycles == pytest.approx(26.5 - 12.25)

    def test_utilization_accepts_float_totals(self):
        bus = MemoryBus(cycles_per_block=16)
        bus.request(0.0)
        assert bus.stats.utilization(64.0) == pytest.approx(0.25)
        assert bus.stats.utilization(0.0) == 0.0

    def test_durations_stay_integral(self):
        """Sub-block transfers quantize deterministically."""
        bus = MemoryBus(cycles_per_block=28)
        start, end = bus.request(0.0, fraction=16 / 64)
        assert end - start == 7
