"""The compiled trace replay: byte-identical to the reference loop.

The pre-compiler's contract is absolute equivalence: lowering a trace
once and replaying it under the timing parameters must reproduce every
field of the reference loop's :class:`SimResult` — cycles to the last
bit (float arithmetic is replayed in the reference operation order, not
re-associated), statistics, metrics snapshot, and the warm cache state
left behind. These tests pin that contract across the registered scheme
cross-product on a randomized trace, at the warmup edge cases, through
warm reuse (where the compiled path must bow out), and under the armed
sanitizer; plus the security half — tampering still raises with the
compiled gate forced on.
"""

import dataclasses
import pickle

import pytest

from repro import fastpath, schemes
from repro.core import IntegrityError, sanitizer
from repro.core.config import PRESET_NAMES, MachineConfig
from repro.core.errors import ConfigurationError
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from tests.conftest import make_machine

KB = 1024
MB = 1024 * 1024

# Small but adversarial: a working set several times the L2, moderate
# writes (exercising dirty evictions and the writeback cascade), and
# short chunks (plenty of misses).
_PROFILE = WorkloadProfile("randomized", hot_bytes=96 * KB, cold_bytes=2 * MB,
                           hot_fraction=0.6, chunk_blocks=4,
                           write_fraction=0.35, mean_gap=7)


def random_trace(events: int = 4000, seed: int = 99):
    return generate_trace(_PROFILE, events, seed)


@pytest.fixture(autouse=True)
def _sanitizer_disarmed():
    """These tests assert the compiled path *engages*, which an armed

    sanitizer (leaked by an unrelated test, or ``REPRO_SANITIZE=1``
    without the suite knowing) would legitimately prevent.
    """
    previous = sanitizer.active()
    sanitizer.disarm()
    yield
    if previous is not None:
        sanitizer.arm(previous)
    else:
        sanitizer.disarm()


def run_reference(config: MachineConfig, trace, **kw):
    sim = TimingSimulator(config)
    with fastpath.forced(False):
        return sim.run(trace, **kw)


def run_compiled(config: MachineConfig, trace, **kw):
    sim = TimingSimulator(config)
    with fastpath.forced(True), fastpath.forced_compiled(True):
        return sim.run(trace, **kw)


def as_fields(result) -> dict:
    return dataclasses.asdict(result)


class TestSchemeCrossProduct:
    def test_every_registered_scheme_combo_is_byte_identical(self):
        """The property test of the equivalence claim.

        Every (encryption, integrity) combination the registries accept,
        on a seeded randomized trace, with metrics collected — compiled
        replay and reference loop must agree on every field.
        """
        trace = random_trace()
        combos = 0
        for enc in schemes.encryption_keys():
            for integ in schemes.integrity_keys():
                try:
                    config = MachineConfig(encryption=enc, integrity=integ)
                except ConfigurationError:
                    continue  # e.g. bonsai without counter storage
                try:
                    ref = run_reference(config, trace, warmup=0.3,
                                        collect_metrics=True)
                except ConfigurationError:
                    continue
                comp = run_compiled(config, trace, warmup=0.3,
                                    collect_metrics=True)
                assert as_fields(comp) == as_fields(ref), (enc, integ)
                combos += 1
        assert combos >= 30  # the registries really were crossed

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_presets_match_the_per_event_engine_too(self, preset):
        trace = random_trace(seed=7)
        config = MachineConfig.preset(preset)
        ref = as_fields(run_reference(config, trace))
        sim = TimingSimulator(config)
        with fastpath.forced(True), fastpath.forced_compiled(False):
            per_event = as_fields(sim.run(trace))
        comp = as_fields(run_compiled(config, trace))
        assert comp == ref
        assert per_event == ref


class TestEdges:
    @pytest.mark.parametrize("warmup", [0.0, 0.25, 0.999, 1.0])
    def test_warmup_edges(self, warmup):
        trace = random_trace(events=1500, seed=3)
        config = MachineConfig.preset("aise+bmt")
        ref = run_reference(config, trace, warmup=warmup)
        comp = run_compiled(config, trace, warmup=warmup)
        assert as_fields(comp) == as_fields(ref)

    def test_warm_reuse_falls_back_and_still_matches(self):
        """Run twice on one simulator: the second run sees warm caches.

        The compiled replay only engages on cold caches (it installs the
        recorded final contents afterwards), so run two must fall back to
        the per-event engine — and both runs must equal the reference.
        """
        trace = random_trace(events=2000, seed=11)
        config = MachineConfig.preset("aise+bmt")
        ref_sim = TimingSimulator(config)
        with fastpath.forced(False):
            ref1, ref2 = ref_sim.run(trace), ref_sim.run(trace)
        comp_sim = TimingSimulator(config)
        with fastpath.forced(True), fastpath.forced_compiled(True):
            comp1, comp2 = comp_sim.run(trace), comp_sim.run(trace)
        assert as_fields(comp1) == as_fields(ref1)
        assert as_fields(comp2) == as_fields(ref2)

    def test_armed_sanitizer_disables_the_compiled_replay(self):
        from repro.fastpath.compiled import execute_compiled

        trace = random_trace(events=800, seed=5)
        config = MachineConfig.preset("aise+bmt")
        with sanitizer.sanitized():
            assert execute_compiled(TimingSimulator(config), trace,
                                    0.25, 64) is None
            # ... and the full run (reference loop) still works and
            # matches the unsanitized result.
            armed = run_reference(config, trace)
        assert as_fields(armed) == as_fields(run_compiled(config, trace))

    def test_lowering_is_shared_across_timing_parameters(self):
        """Timing knobs replay one artifact; geometry changes re-lower."""
        trace = random_trace(events=1200, seed=13)
        slow = MachineConfig.preset("aise+bmt")
        fast_mem = MachineConfig.preset("aise+bmt", memory_latency=77)
        run_compiled(slow, trace)
        run_compiled(fast_mem, trace)
        assert len(trace.__dict__["_compiled"]) == 1
        assert as_fields(run_compiled(fast_mem, trace)) == as_fields(
            run_reference(fast_mem, trace))

    def test_pickled_traces_drop_the_lowering(self):
        trace = random_trace(events=600, seed=17)
        run_compiled(MachineConfig.preset("aise"), trace)
        assert "_compiled" in trace.__dict__
        clone = pickle.loads(pickle.dumps(trace))
        assert "_compiled" not in clone.__dict__
        assert clone.digest() == trace.digest()


class TestSecurityPath:
    def test_tamper_still_raises_with_compiled_gates_on(self):
        """The fast gates must not bypass integrity verification."""
        with fastpath.forced(True), fastpath.forced_compiled(True):
            machine = make_machine(encryption="aise", integrity="bonsai")
            machine.write_block(0, b"\x5a" * 64)
            machine.memory.corrupt(0)
            with pytest.raises(IntegrityError):
                machine.read_block(0)
