"""Trace persistence (.npz), Dinero interchange, and the L1 front-end."""

import io

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.sim.l1filter import filter_through_l1, l1_hit_rate
from repro.sim.trace import OP_READ, OP_WRITE, Trace
from repro.sim.traceio import dinero_from_text, dump_dinero, load_dinero, load_trace, save_trace
from repro.workloads.synthetic import resident_trace, streaming_trace


class TestNpzRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = streaming_trace(500, 1 << 20, seed=2, name="roundtrip")
        path = tmp_path / "trace.npz"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.name == "roundtrip"
        assert np.array_equal(loaded.gaps, trace.gaps)
        assert np.array_equal(loaded.ops, trace.ops)
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path, version=np.asarray([99]), name=np.asarray(["x"]),
            gaps=np.zeros(1, np.uint32), ops=np.zeros(1, np.uint8),
            addresses=np.zeros(1, np.uint64),
        )
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestDinero:
    def test_parse_basic(self):
        trace = dinero_from_text("0 1000\n1 2000\n2 3000\n")
        assert list(trace.ops) == [OP_READ, OP_WRITE, OP_READ]  # ifetch -> read
        assert list(trace.addresses) == [0x1000, 0x2000, 0x3000]

    def test_comments_and_blanks_skipped(self):
        trace = dinero_from_text("# header\n\n0 40\n  \n1 80\n")
        assert len(trace) == 2

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            dinero_from_text("7 1000\n")

    def test_short_line_rejected(self):
        with pytest.raises(ValueError):
            dinero_from_text("0\n")

    def test_mean_gap_applied(self):
        trace = dinero_from_text("0 0\n0 40\n", mean_gap=25)
        assert list(trace.gaps) == [25, 25]

    def test_file_roundtrip(self, tmp_path):
        trace = dinero_from_text("0 1000\n1 2040\n")
        path = tmp_path / "out.din"
        dump_dinero(trace, str(path))
        again = load_dinero(str(path))
        assert list(again.ops) == list(trace.ops)
        assert list(again.addresses) == list(trace.addresses)

    def test_handle_input(self):
        trace = load_dinero(io.StringIO("0 abc0\n"), name="stream")
        assert trace.name == "stream"
        assert trace.addresses[0] == 0xABC0

    def test_end_to_end_simulation(self):
        """A Dinero trace drives the simulator through the L1 filter."""
        from repro.core.config import aise_bmt_config
        from repro.sim.simulator import TimingSimulator

        lines = "".join(f"0 {i * 64:x}\n" for i in range(2000))
        raw = dinero_from_text(lines)
        l2_trace = filter_through_l1(raw)
        result = TimingSimulator(aise_bmt_config()).run(l2_trace, warmup=0.0)
        assert result.cycles > 0


class TestL1Filter:
    def test_repeated_block_filtered_out(self):
        raw = Trace.from_lists([(1, OP_READ, 0)] * 100)
        filtered = filter_through_l1(raw)
        assert len(filtered) == 1  # one compulsory miss

    def test_gaps_accumulate_across_hits(self):
        raw = Trace.from_lists([(10, OP_READ, 0)] * 5 + [(10, OP_READ, 64)])
        filtered = filter_through_l1(raw)
        assert len(filtered) == 2
        # 4 hits after the first miss contribute their gaps + retire slots.
        assert filtered.gaps[1] == 4 * 10 + 4 + 10

    def test_distinct_blocks_pass_through(self):
        raw = Trace.from_lists([(1, OP_READ, i * 64) for i in range(100)])
        filtered = filter_through_l1(raw, l1=CacheConfig(4096, 2, 2))
        reads = [a for o, a in zip(filtered.ops, filtered.addresses) if o == OP_READ]
        assert len(reads) == 100

    def test_dirty_evictions_become_writes(self):
        l1 = CacheConfig(2 * 64, 1, 2)  # 2 direct-mapped lines
        raw = Trace.from_lists([
            (1, OP_WRITE, 0),
            (1, OP_READ, 128),  # same set as 0 -> evicts dirty 0
        ])
        filtered = filter_through_l1(raw, l1=l1)
        pairs = list(zip(filtered.ops.tolist(), filtered.addresses.tolist()))
        assert (OP_WRITE, 0) in pairs

    def test_hit_rate_helper(self):
        raw = resident_trace(5000, footprint_bytes=8 * 1024, seed=3)
        assert l1_hit_rate(raw) > 0.9  # 8KB working set in a 32KB L1

    def test_streaming_hit_rate_reflects_block_reuse(self):
        raw = streaming_trace(5000, 4 << 20, seed=4)
        rate = l1_hit_rate(raw)
        assert rate < 0.2  # block-granular stream: almost no reuse
