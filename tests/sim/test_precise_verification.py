"""Precise vs non-precise (timely) integrity verification — paper section 6.

The paper evaluates the non-precise mode: blocks are verified as soon as
they arrive, but retirement does not wait. These tests pin the expected
relationships of the precise mode the schemes are also "compatible with".
"""

import pytest

from repro.core.config import MachineConfig, aise_bmt_config, baseline_config
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import spec_trace


@pytest.fixture(scope="module")
def trace():
    return spec_trace("art", 20_000)


def run(config, trace):
    return TimingSimulator(config).run(trace)


class TestPreciseMode:
    def test_precise_costs_more(self, trace):
        relaxed = run(aise_bmt_config(), trace)
        precise = run(aise_bmt_config(precise_verification=True), trace)
        assert precise.cycles > relaxed.cycles * 1.2

    def test_precise_mt_costs_more_than_relaxed_mt(self, trace):
        relaxed = run(MachineConfig(encryption="aise", integrity="merkle"), trace)
        precise = run(
            MachineConfig(encryption="aise", integrity="merkle", precise_verification=True),
            trace,
        )
        assert precise.cycles > relaxed.cycles

    def test_precise_without_integrity_is_free(self, trace):
        relaxed = run(baseline_config(), trace)
        precise = run(baseline_config(precise_verification=True), trace)
        assert precise.cycles == pytest.approx(relaxed.cycles)

    def test_uncached_macs_hurt_under_precise_verification(self, trace):
        """BMT's no-MAC-caching policy is justified by NON-precise
        verification; once verification blocks retirement, every uncached
        MAC fetch is a serialized memory round-trip, and caching wins.
        (An interaction the paper's section 5.2/6 split implies.)"""
        uncached = run(aise_bmt_config(precise_verification=True), trace)
        cached = run(
            aise_bmt_config(precise_verification=True, cache_data_macs=True), trace
        )
        assert cached.cycles < uncached.cycles

    def test_bmt_still_beats_mt_when_both_cache_macs(self, trace):
        bmt = run(
            aise_bmt_config(precise_verification=True, cache_data_macs=True), trace
        )
        mt = run(
            MachineConfig(encryption="aise", integrity="merkle", precise_verification=True),
            trace,
        )
        assert bmt.cycles < mt.cycles
