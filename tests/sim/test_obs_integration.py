"""Observability wired through the timing simulator and functional models.

The load-bearing guarantees, each tested directly:

* enabling observation changes NO reported number (bit-identity);
* warmup never leaks: traced events correspond 1:1 to measured stats,
  and the tracer clock restarts at the warmup boundary (and again on
  every warm-reuse ``run()``);
* interval snapshots reconstruct the aggregate SimResult exactly — the
  final sample IS the aggregate, so a Figure 9 timeline ends on the
  figure's reported value;
* the kernel and BMT verifier emit their events/spans through the
  ambient API;
* SimResult's JSON round-trip stays lossless with metrics attached.
"""

import json

import repro.obs as obs
from repro.evalx.runner import config_named
from repro.mem.layout import PAGE_SIZE
from repro.obs.tracer import ListSink, EventTracer
from repro.sim.results import SimResult
from repro.sim.simulator import TimingSimulator
from repro.workloads.synthetic import (
    pointer_chase_trace,
    resident_trace,
    streaming_trace,
)

from ..conftest import make_machine

CFG = "aise+bmt"
EVENTS = 8000


def traced_run(trace, interval=512, label=CFG, warmup=0.25):
    with obs.observed(tracer=EventTracer(ListSink()),
                      interval=interval) as session:
        sim = TimingSimulator(config_named(label))
        result = sim.run(trace, label=label, warmup=warmup,
                         collect_metrics=True)
    return sim, result, session


class TestBitIdentity:
    def test_enabled_run_matches_disabled_run_exactly(self):
        trace = streaming_trace(EVENTS, 4 << 20)
        plain = TimingSimulator(config_named(CFG)).run(trace, label=CFG)
        _, traced, _ = traced_run(trace)
        expected = plain.to_dict()
        actual = traced.to_dict()
        assert actual.pop("metrics")  # attached, and non-empty
        assert actual == expected  # every other field bit-identical

    def test_metrics_only_attached_when_requested(self):
        trace = resident_trace(3000)
        with obs.observed():
            result = TimingSimulator(config_named(CFG)).run(trace, label=CFG)
        assert result.metrics == {}


class TestWarmupIsolation:
    def test_events_match_measured_stats_exactly(self):
        # The leak-proof: if any warmup event escaped, these counts
        # could not equal the (warmup-excluded) SimResult statistics.
        trace = streaming_trace(EVENTS, 4 << 20)
        _, result, session = traced_run(trace)
        events = session.tracer.events()
        by_name = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)
        assert len(by_name["l2_miss"]) == result.l2_misses > 0
        assert len(by_name["counter_miss"]) == result.counter_misses > 0
        assert all(e.ts >= 0.0 for e in events)

    def test_histogram_counts_measured_misses_only(self):
        trace = streaming_trace(EVENTS, 4 << 20)
        _, result, _ = traced_run(trace)
        hist = result.metrics["sim.miss_latency"]
        assert hist["count"] == result.l2_misses
        assert sum(hist["counts"]) == hist["count"]

    def test_warm_reuse_rebases_tracer_clock(self):
        # Touch more distinct blocks than the 1 MiB L2 holds so even the
        # warm rerun keeps missing (a cacheable trace would go silent
        # once L2 holds it: 24000 events x 64 B = 1.5 MiB touched).
        trace = pointer_chase_trace(24_000, 4 << 20)
        with obs.observed(tracer=EventTracer(ListSink())) as session:
            sim = TimingSimulator(config_named(CFG))
            sim.run(trace, label=CFG)
            first_end = max(e.ts for e in session.tracer.events())
            session.tracer.clear()
            sim.run(trace, label=CFG)  # warm caches, fresh clock
        second = session.tracer.events()
        assert second, "warm run should still trace"
        # Rebasing anchors the second measured interval at ~0, far below
        # where an unrebased clock (continuing past run 1) would start.
        assert min(e.ts for e in second) < first_end

    def test_no_events_at_negative_time_across_intervals(self):
        _, _, session = traced_run(streaming_trace(EVENTS, 4 << 20))
        assert all(s["ts"] >= 0.0 for s in session.samples)


class TestIntervalSnapshots:
    def test_final_sample_reproduces_figure9_exactly(self):
        # Figure 9 plots L2 data vs Merkle occupancy. The snapshots are
        # cumulative, so the last sample must equal the aggregate — the
        # issue's 0.1% tolerance is met with equality to spare.
        _, result, session = traced_run(streaming_trace(EVENTS, 4 << 20))
        final = session.samples[-1]
        assert final["l2.occupancy.data"] == result.l2_data_fraction
        merkle = final["l2.occupancy.merkle"] + final["l2.occupancy.mac"]
        assert merkle == result.l2_merkle_fraction
        assert final["sim.demand_misses"] == result.l2_misses
        assert final["bus.transfers_by_kind"] == result.bus_transfers_by_kind

    def test_sampling_interval_respected(self):
        _, _, session = traced_run(streaming_trace(EVENTS, 4 << 20),
                                   interval=500)
        # t=0 sample + one per 500 measured events + final sample.
        measured = EVENTS - int(EVENTS * 0.25)
        assert len(session.samples) == 2 + measured // 500
        assert session.samples[0]["events"] == 0
        assert session.samples[1]["events"] == 500

    def test_samples_are_monotone_in_time_and_counts(self):
        _, _, session = traced_run(streaming_trace(EVENTS, 4 << 20))
        ts = [s["ts"] for s in session.samples]
        misses = [s["sim.demand_misses"] for s in session.samples]
        assert ts == sorted(ts)
        assert misses == sorted(misses)


class TestFunctionalModelEvents:
    def test_kernel_swaps_emit_events(self):
        machine = make_machine(data_bytes=16 * 4096, swap_bytes=64 * 4096)
        from repro.osmodel import Kernel

        kernel = Kernel(machine, swap_slots=64)
        with obs.observed() as session:
            hog = kernel.create_process("hog")
            kernel.mmap(hog.pid, 0x100000, 20)  # 20 pages > 16 frames
            for i in range(20):
                kernel.write(hog.pid, 0x100000 + i * PAGE_SIZE, bytes([i]) * 64)
            for i in range(20):
                kernel.read(hog.pid, 0x100000 + i * PAGE_SIZE, 64)
        names = [e.name for e in session.tracer.events()]
        assert names.count("swap_out") == kernel.stats.swap_outs > 0
        assert names.count("swap_in") == kernel.stats.swap_ins > 0

    def test_bmt_verification_wrapped_in_span(self):
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(0, b"\x42" * 64)
        # Evict the engine's counter-block cache (as a real bounded cache
        # would) so the read must re-fetch — and re-verify — the counter.
        machine.encryption._cache.clear()
        with obs.observed() as session:
            machine.read_block(0)
        phases = session.profiler.snapshot()
        assert phases.get("verify_bmt", {}).get("count", 0) > 0


class TestSimResultRoundTrip:
    def test_lossless_with_transfers_and_metrics(self):
        _, result, _ = traced_run(streaming_trace(EVENTS, 4 << 20))
        assert result.bus_transfers_by_kind  # non-empty by construction
        assert result.metrics
        rebuilt = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.metrics == result.metrics

    def test_metrics_key_omitted_when_empty(self):
        result = TimingSimulator(config_named(CFG)).run(
            resident_trace(2000), label=CFG
        )
        data = result.to_dict()
        assert "metrics" not in data
        assert SimResult.from_dict(data) == result
