"""Timing simulator: mechanism-level checks and paper-shape orderings."""

import pytest

from repro.core.config import MachineConfig, aise_bmt_config, baseline_config, global64_mt_config
from repro.sim.simulator import TimingSimulator, simulate
from repro.sim.trace import OP_READ, OP_WRITE, Trace
from repro.workloads.synthetic import pointer_chase_trace, resident_trace, streaming_trace


def run(config, trace, warmup=0.0, overlap=0.7):
    return TimingSimulator(config, overlap=overlap).run(trace, warmup=warmup)


class TestBaselineMechanics:
    def test_hits_are_cheap(self):
        trace = Trace.from_lists([(0, OP_READ, 0)] * 100)
        result = run(baseline_config(), trace)
        # One cold miss, then 99 hits at L2 latency.
        assert result.l2_misses == 1
        assert result.cycles < 100 * 30

    def test_misses_pay_memory_latency(self):
        cold = Trace.from_lists([(0, OP_READ, i * 64) for i in range(100)])
        warm = Trace.from_lists([(0, OP_READ, 0)] * 100)
        assert run(baseline_config(), cold).cycles > run(baseline_config(), warm).cycles * 3

    def test_deterministic(self):
        trace = streaming_trace(2000, 1 << 20, seed=3)
        a = run(aise_bmt_config(), trace)
        b = run(aise_bmt_config(), trace)
        assert a.cycles == b.cycles

    def test_miss_rate_reporting(self):
        trace = Trace.from_lists([(0, OP_READ, i * 64) for i in range(50)] * 2)
        result = run(baseline_config(), trace)
        assert result.l2_accesses == 100
        assert result.l2_misses == 50
        assert result.l2_miss_rate == pytest.approx(0.5)

    def test_warmup_excludes_cold_misses(self):
        trace = Trace.from_lists([(0, OP_READ, i % 10 * 64) for i in range(1000)])
        result = run(baseline_config(), trace, warmup=0.5)
        assert result.l2_misses == 0  # all 10 blocks warmed

    def test_instructions_counted_post_warmup(self):
        trace = Trace.from_lists([(9, OP_READ, 0)] * 100)
        result = run(baseline_config(), trace, warmup=0.5)
        assert result.instructions == 50 * 10

    def test_writes_cause_writebacks(self):
        # Write 1000 distinct blocks through a small set of L2 sets, then
        # stream reads to force dirty evictions.
        events = [(0, OP_WRITE, i * 64) for i in range(20000)]
        result = run(baseline_config(), Trace.from_lists(events))
        assert result.bus_transfers_by_kind.get("data_wb", 0) > 0


class TestEncryptionTiming:
    def test_counter_hit_hides_decryption(self):
        """Sequential blocks share an AISE counter block: after the first
        miss per page the pad is overlapped — near-zero exposure."""
        trace = streaming_trace(5000, 4 << 20, seed=1)
        result = run(aise_bmt_config(), trace)
        exposure_per_miss = result.exposed_decrypt_cycles / max(1, result.l2_misses)
        assert exposure_per_miss < 15

    def test_random_access_exposes_more_for_global64(self):
        trace = pointer_chase_trace(5000, 8 << 20, seed=2)
        aise = run(MachineConfig(encryption="aise", integrity="none"), trace)
        g64 = run(MachineConfig(encryption="global64", integrity="none"), trace)
        assert g64.exposed_decrypt_cycles >= aise.exposed_decrypt_cycles

    def test_direct_encryption_always_exposed(self):
        trace = streaming_trace(2000, 4 << 20, seed=1)
        direct = run(MachineConfig(encryption="direct", integrity="none"), trace)
        assert direct.exposed_decrypt_cycles == pytest.approx(80 * direct.l2_misses)

    def test_counter_cache_reach_ordering(self):
        """AISE counter blocks cover 8x more data than global64's."""
        trace = streaming_trace(8000, 8 << 20, seed=4)
        aise = run(MachineConfig(encryption="aise", integrity="none"), trace)
        g64 = run(MachineConfig(encryption="global64", integrity="none"), trace)
        assert aise.counter_misses < g64.counter_misses

    def test_unprotected_has_no_counter_traffic(self):
        trace = streaming_trace(1000, 1 << 20)
        result = run(baseline_config(), trace)
        assert result.counter_accesses == 0
        assert result.exposed_decrypt_cycles == 0


class TestIntegrityTiming:
    def test_merkle_walk_generates_node_traffic(self):
        trace = streaming_trace(3000, 4 << 20, seed=5)
        result = run(MachineConfig(encryption="aise", integrity="merkle"), trace)
        assert result.bus_transfers_by_kind.get("merkle", 0) > 0

    def test_bmt_fetches_uncached_macs_every_miss(self):
        trace = pointer_chase_trace(3000, 8 << 20, seed=6)
        result = run(aise_bmt_config(), trace)
        assert result.bus_transfers_by_kind.get("mac", 0) >= result.l2_misses * 0.9

    def test_mt_pollutes_l2_bmt_does_not(self):
        trace = streaming_trace(20000, 4 << 20, seed=7)
        mt = run(MachineConfig(encryption="aise", integrity="merkle"), trace)
        bmt = run(aise_bmt_config(), trace)
        assert mt.l2_merkle_fraction > 0.10
        assert bmt.l2_merkle_fraction < 0.05
        assert bmt.l2_data_fraction > mt.l2_data_fraction

    def test_bmt_ablation_caching_data_macs_pollutes(self):
        """cache_data_macs=True re-introduces MAC pollution (section 5.2
        explains why BMT deliberately does not cache them)."""
        trace = streaming_trace(20000, 4 << 20, seed=8)
        default = run(aise_bmt_config(), trace)
        cached = run(aise_bmt_config(cache_data_macs=True), trace)
        assert cached.l2_merkle_fraction > default.l2_merkle_fraction


class TestPaperOrderings:
    """The headline comparisons, on one memory-bound synthetic workload."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.workloads.synthetic import WorkloadProfile, generate_trace

        profile = WorkloadProfile("hotcold", hot_bytes=896 * 1024, cold_bytes=4 << 20,
                                  hot_fraction=0.7, chunk_blocks=8, write_fraction=0.3,
                                  mean_gap=8)
        trace = generate_trace(profile, 40_000, seed=11)
        configs = {
            "base": baseline_config(),
            "aise": MachineConfig(encryption="aise", integrity="none"),
            "global64": MachineConfig(encryption="global64", integrity="none"),
            "aise+mt": MachineConfig(encryption="aise", integrity="merkle"),
            "aise+bmt": aise_bmt_config(),
            "g64+mt": global64_mt_config(),
        }
        return {label: TimingSimulator(cfg).run(trace, warmup=0.25)
                for label, cfg in configs.items()}

    def test_everything_slower_than_base(self, results):
        for label, result in results.items():
            if label != "base":
                assert result.cycles >= results["base"].cycles, label

    def test_aise_beats_global64(self, results):
        assert results["aise"].cycles < results["global64"].cycles

    def test_bmt_beats_mt(self, results):
        assert results["aise+bmt"].cycles < results["aise+mt"].cycles

    def test_proposal_beats_prior_art(self, results):
        """Figure 6: AISE+BMT << global64+MT."""
        base = results["base"]
        proposal = results["aise+bmt"].overhead_vs(base)
        prior = results["g64+mt"].overhead_vs(base)
        assert proposal < prior / 3

    def test_bmt_overhead_is_small(self, results):
        assert results["aise+bmt"].overhead_vs(results["base"]) < 0.10

    def test_mt_raises_miss_rate_bmt_barely(self, results):
        """Figure 10a shape."""
        base, mt, bmt = (results[k].l2_miss_rate for k in ("base", "aise+mt", "aise+bmt"))
        assert mt > base + 0.02
        assert abs(bmt - base) < 0.02

    def test_bus_utilization_ordering(self, results):
        """Figure 10b shape."""
        base, mt, bmt = (results[k].bus_utilization for k in ("base", "aise+mt", "aise+bmt"))
        assert base < bmt < mt


class TestOneShotHelper:
    def test_simulate_function(self):
        result = simulate(resident_trace(1000), aise_bmt_config(), label="check")
        assert result.config_label == "check"
        assert result.cycles > 0
