"""Recording functional workloads as timing traces."""

import pytest

from repro.sim import AccessRecorder, OP_READ, OP_WRITE, TimingSimulator
from repro.core import aise_bmt_config, baseline_config
from repro.osmodel import Kernel

from tests.conftest import make_machine

PAGE = 4096


class TestRecorder:
    def test_records_machine_accesses(self):
        machine = make_machine(data_bytes=16 * PAGE)
        with AccessRecorder(machine) as recorder:
            machine.write_block(0, b"\x01" * 64)
            machine.read_block(0)
        trace = recorder.to_trace("unit")
        pairs = list(zip(trace.ops.tolist(), trace.addresses.tolist()))
        assert (OP_WRITE, 0) in pairs
        assert (OP_READ, 0) in pairs

    def test_metadata_accesses_filtered_out(self):
        machine = make_machine(data_bytes=16 * PAGE)
        with AccessRecorder(machine) as recorder:
            machine.write_block(0, b"\x01" * 64)
        # Raw log includes counter/MAC/tree traffic; the trace does not.
        assert any(addr >= machine.layout.data_bytes for _, addr in recorder.raw_events)
        assert (trace := recorder.to_trace()).addresses.max() < machine.layout.data_bytes
        assert len(trace) < len(recorder.raw_events)

    def test_stop_detaches(self):
        machine = make_machine(data_bytes=16 * PAGE)
        recorder = AccessRecorder(machine)
        recorder.start()
        machine.write_block(0, bytes(64))
        recorder.stop()
        before = len(recorder.raw_events)
        machine.write_block(64, bytes(64))
        assert len(recorder.raw_events) == before

    def test_double_attach_rejected(self):
        machine = make_machine(data_bytes=16 * PAGE)
        with AccessRecorder(machine):
            with pytest.raises(RuntimeError):
                AccessRecorder(machine).start()

    def test_unstarted_recorder_raises(self):
        machine = make_machine(data_bytes=16 * PAGE)
        with pytest.raises(RuntimeError):
            AccessRecorder(machine).to_trace()


class TestKernelWorkloadReplay:
    def test_os_workload_replays_on_the_timing_model(self):
        """End-to-end bridge: run an OS workload functionally, record it,
        and replay the stream under two timing configurations."""
        machine = make_machine(data_bytes=32 * PAGE, swap_bytes=64 * PAGE)
        kernel = Kernel(machine, swap_slots=64)
        proc = kernel.create_process()
        kernel.mmap(proc.pid, 0x10000, 8)
        with AccessRecorder(machine) as recorder:
            for i in range(8):
                kernel.write(proc.pid, 0x10000 + i * PAGE, bytes([i]) * 256)
            for i in range(8):
                kernel.read(proc.pid, 0x10000 + i * PAGE, 256)
        trace = recorder.to_trace("os-workload")
        assert len(trace) > 0
        base = TimingSimulator(baseline_config()).run(trace, warmup=0.0)
        protected = TimingSimulator(aise_bmt_config()).run(trace, warmup=0.0)
        assert protected.cycles >= base.cycles > 0
