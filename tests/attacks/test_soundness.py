"""The soundness property: protected reads never return silently-wrong data.

For tree-protected configurations, ANY single-block corruption anywhere
in off-chip memory — data, counters, tree nodes, per-block MACs, page
root directory — must leave every subsequent read either correct or
raising :class:`IntegrityError`. Hypothesis drives random workloads and
random corruption targets against a machine with all on-chip state
flushed (so nothing is masked by trusted copies).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrityError, MachineConfig, SecureMemorySystem

PAGE = 4096
PAGES = 8
BLOCKS = PAGES * (PAGE // 64)


def fresh_machine(integrity: str) -> SecureMemorySystem:
    machine = SecureMemorySystem(
        MachineConfig(physical_bytes=PAGES * PAGE, encryption="aise", integrity=integrity)
    )
    machine.boot()
    return machine


def flush_on_chip(machine: SecureMemorySystem) -> None:
    machine.encryption._cache.clear()
    if machine.tree is not None:
        machine.tree._trusted.clear()


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=BLOCKS - 1), st.integers(0, 255)),
        min_size=1, max_size=12,
    ),
    corrupt_block=st.integers(min_value=0),
    integrity=st.sampled_from(["bonsai", "merkle"]),
)
def test_no_silent_corruption(writes, corrupt_block, integrity):
    machine = fresh_machine(integrity)
    shadow = {}
    for block, value in writes:
        machine.write_block(block * 64, bytes([value]) * 64)
        shadow[block] = bytes([value]) * 64

    # Corrupt one block anywhere in the *populated* off-chip image.
    populated = sorted(machine.memory._blocks)
    target = populated[corrupt_block % len(populated)]
    machine.memory.corrupt(target)
    flush_on_chip(machine)

    for block, expected in shadow.items():
        try:
            got = machine.read_block(block * 64)
        except IntegrityError:
            continue  # detection: acceptable (and expected for the victim)
        assert got == expected, (
            f"silent corruption: block {block} returned wrong data after "
            f"tampering block at {target:#x} ({machine.layout.region_of(target)})"
        )


@settings(max_examples=20, deadline=None)
@given(
    corrupt_offset=st.integers(min_value=0),
    region=st.sampled_from(["counter", "tree", "mac"]),
)
def test_metadata_regions_are_load_bearing(corrupt_offset, region):
    """Corrupting metadata that *guards written data* is detected when
    that data is next read (BMT machine). Metadata guarding untouched
    pages is legitimately silent until those pages are used, so targets
    are restricted to the written pages' counter blocks, their Merkle
    ancestors, and their MAC blocks."""
    machine = fresh_machine("bonsai")
    for page in range(PAGES):
        machine.write_block(page * PAGE, bytes([page + 1]) * 64)

    counters = {machine.encryption.counter_block_address(page * PAGE) for page in range(PAGES)}
    ancestors = set()
    for cb in counters:
        for ref in machine.tree.geometry.walk(cb):
            ancestors.add(ref.address)
    macs = {machine.integrity.store.mac_block_address(page * PAGE) for page in range(PAGES)}
    targets = {"counter": sorted(counters), "tree": sorted(ancestors), "mac": sorted(macs)}[region]

    target = targets[corrupt_offset % len(targets)]
    machine.memory.corrupt(target)
    flush_on_chip(machine)

    detected = False
    for page in range(PAGES):
        try:
            got = machine.read_block(page * PAGE)
            assert got == bytes([page + 1]) * 64
        except IntegrityError:
            detected = True
    assert detected, f"corruption of {region} block at {target:#x} went unnoticed"
