"""The executable security matrix: which scheme detects which attack."""

import pytest

from repro.attacks.scenarios import (
    counter_tamper_attack,
    replay_attack,
    run_all,
    splicing_attack,
    spoofing_attack,
)
from repro.attacks.tamper import MemoryTamperer

from tests.conftest import make_machine

TINY = 16 * 4096


class TestDetectionMatrix:
    @pytest.mark.parametrize("integ", ["bonsai", "merkle", "mac_only"])
    def test_spoofing_detected_by_all_integrity_schemes(self, integ):
        machine = make_machine(integrity=integ, data_bytes=TINY)
        assert spoofing_attack(machine).detected

    @pytest.mark.parametrize("integ", ["bonsai", "merkle", "mac_only"])
    def test_splicing_detected_by_all_integrity_schemes(self, integ):
        machine = make_machine(integrity=integ, data_bytes=TINY)
        assert splicing_attack(machine).detected

    @pytest.mark.parametrize("integ", ["bonsai", "merkle"])
    def test_replay_detected_by_tree_schemes(self, integ):
        machine = make_machine(integrity=integ, data_bytes=TINY)
        assert replay_attack(machine).detected

    def test_replay_missed_by_mac_only(self):
        """The paper's motivation for Merkle trees (section 5)."""
        machine = make_machine(integrity="mac_only", data_bytes=TINY)
        assert not replay_attack(machine).detected

    @pytest.mark.parametrize("integ", ["bonsai", "merkle"])
    def test_counter_tamper_detected(self, integ):
        machine = make_machine(integrity=integ, data_bytes=TINY)
        assert counter_tamper_attack(machine).detected

    def test_unprotected_machine_misses_everything(self):
        machine = make_machine(encryption="none", integrity="none", data_bytes=TINY)
        for result in run_all(machine):
            assert not result.detected, result.scenario

    def test_bmt_full_matrix(self):
        machine = make_machine(data_bytes=TINY)
        results = {r.scenario: r.detected for r in run_all(machine)}
        assert results == {
            "spoofing": True,
            "splicing": True,
            "replay": True,
            "counter-tamper": True,
        }

    def test_bmt_with_global64_also_protects(self):
        machine = make_machine(encryption="global64", integrity="bonsai", data_bytes=TINY)
        assert replay_attack(machine).detected


class TestPassiveObservation:
    def test_ciphertext_never_leaks_plaintext(self):
        machine = make_machine(data_bytes=TINY)
        tamperer = MemoryTamperer(machine)
        secret = b"top secret bytes" * 4
        machine.write_block(0, secret)
        assert not tamperer.ciphertext_leaks_plaintext(0, secret)

    def test_unencrypted_machine_leaks(self):
        machine = make_machine(encryption="none", integrity="bonsai" if False else "none",
                               data_bytes=TINY)
        tamperer = MemoryTamperer(machine)
        secret = b"top secret bytes" * 4
        machine.write_block(0, secret)
        assert tamperer.ciphertext_leaks_plaintext(0, secret)


class TestTamperer:
    def test_attack_log(self):
        machine = make_machine(data_bytes=TINY)
        machine.write_block(0, b"\x01" * 64)
        tamperer = MemoryTamperer(machine)
        tamperer.spoof(0)
        snap = tamperer.snapshot(64)
        tamperer.replay(snap)
        assert [r.kind for r in tamperer.log] == ["spoof", "snapshot", "replay"]

    def test_splice_swaps_raw_blocks(self):
        machine = make_machine(data_bytes=TINY)
        machine.write_block(0, b"\x0a" * 64)
        machine.write_block(64, b"\x0b" * 64)
        tamperer = MemoryTamperer(machine)
        a_raw = tamperer.observe(0)
        b_raw = tamperer.observe(64)
        tamperer.splice(0, 64)
        assert tamperer.observe(0) == b_raw
        assert tamperer.observe(64) == a_raw

    def test_metadata_locators(self):
        machine = make_machine(data_bytes=TINY)
        tamperer = MemoryTamperer(machine)
        assert tamperer.counter_block(0) == machine.layout.counter_base
        assert machine.layout.mac_base <= tamperer.data_mac_block(0) < machine.layout.total_bytes

    def test_mac_locator_rejected_without_macs(self):
        machine = make_machine(integrity="merkle", data_bytes=TINY)
        tamperer = MemoryTamperer(machine)
        with pytest.raises(ValueError):
            tamperer.data_mac_block(0)
