"""Transient bus man-in-the-middle attacks (wires, not DRAM cells).

The paper's threat model includes "a bus analyzer that snoops data
communicated between the processor chip and other chips" acting as a
man-in-the-middle. These tests inject values on the wire for a single
transaction while leaving DRAM intact: detection must fire on the
tampered fetch, and the system must recover on the next (clean) one.
"""

import pytest

from repro.core import IntegrityError
from repro.mem.dram import BlockMemory

from tests.conftest import make_machine

TINY = 16 * 4096


class TestInterceptMechanism:
    def test_one_shot_injection(self):
        memory = BlockMemory(4096)
        memory.write_block(0, b"\x11" * 64)
        memory.intercept_next_read(0)
        assert memory.read_block(0) == b"\xee" * 64  # flipped on the wire
        assert memory.read_block(0) == b"\x11" * 64  # stored copy intact

    def test_custom_payload(self):
        memory = BlockMemory(4096)
        memory.intercept_next_read(0, b"\x99" * 64)
        assert memory.read_block(0) == b"\x99" * 64

    def test_raw_reads_bypass_interception(self):
        """The attacker targets the processor's transactions, not its own."""
        memory = BlockMemory(4096)
        memory.write_block(0, b"\x11" * 64)
        memory.intercept_next_read(0)
        assert memory.raw_read(0) == b"\x11" * 64
        assert memory.read_block(0) != b"\x11" * 64  # still armed

    def test_rejects_bad_payload_size(self):
        memory = BlockMemory(4096)
        with pytest.raises(ValueError):
            memory.intercept_next_read(0, b"short")


class TestDetectionAndRecovery:
    @pytest.mark.parametrize("integ", ["bonsai", "merkle", "mac_only"])
    def test_transient_data_injection_detected(self, integ):
        machine = make_machine(integrity=integ, data_bytes=TINY)
        machine.write_block(0, b"\x42" * 64)
        machine.memory.intercept_next_read(0)
        with pytest.raises(IntegrityError):
            machine.read_block(0)

    def test_system_recovers_after_transient_attack(self):
        """DRAM was never modified: the retry (next fetch) succeeds —
        unlike a persistent DRAM rewrite."""
        machine = make_machine(data_bytes=TINY)
        machine.write_block(0, b"\x42" * 64)
        machine.memory.intercept_next_read(0)
        with pytest.raises(IntegrityError):
            machine.read_block(0)
        assert machine.read_block(0) == b"\x42" * 64

    def test_transient_counter_injection_detected(self):
        machine = make_machine(data_bytes=TINY)
        machine.write_block(0, b"\x42" * 64)
        cb = machine.encryption.counter_block_address(0)
        machine.invalidate_page(0)
        machine.encryption.drop_cached_counters(0)
        machine.tree._trusted.clear()
        machine.memory.intercept_next_read(cb)
        with pytest.raises(IntegrityError):
            machine.read_block(0)

    def test_unprotected_machine_consumes_the_injection(self):
        machine = make_machine(encryption="none", integrity="none", data_bytes=TINY)
        machine.write_block(0, b"\x42" * 64)
        machine.memory.intercept_next_read(0, b"\x66" * 64)
        assert machine.read_block(0) == b"\x66" * 64  # silently wrong
