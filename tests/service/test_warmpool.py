"""Warm-machine soundness: reuse must be observationally cold.

The service's whole contract rests on ``reset_cold()``: a pooled,
reset simulator must be indistinguishable-by-results from a freshly
constructed one, for every scheme the pool will ever hold — including
the deferred-update lazy tree, whose pending queues must not leak
across tenants.
"""

import pytest

from repro import api
from repro.api import MachineConfig, TimingSimulator
from repro.schemes import integrity_scheme
from repro.service.warmpool import TraceStore, WarmMachinePool

EVENTS = 2_000
LABELS = ("base", "aise+bmt", "aise+bmt_lazy", "global64+mt")


def run_once(sim, trace, label):
    return sim.run(trace, label=label).to_dict()


class TestResetColdByteIdentity:
    @pytest.mark.parametrize("label", LABELS)
    def test_reset_machine_matches_fresh_machine(self, label):
        config = MachineConfig.preset(label)
        dirty_trace = api.load_trace("chase", EVENTS)
        trace = api.load_trace("stream", EVENTS)

        fresh = run_once(TimingSimulator(config), trace, label)
        reused = TimingSimulator(config)
        run_once(reused, dirty_trace, label)  # leave real state behind
        reused.reset_cold()
        assert run_once(reused, trace, label) == fresh

    def test_repeated_reuse_stays_identical(self):
        config = MachineConfig.preset("aise+bmt_lazy")
        trace = api.load_trace("stream", EVENTS)
        sim = TimingSimulator(config)
        first = run_once(sim, trace, "aise+bmt_lazy")
        for _ in range(3):
            sim.reset_cold()
            assert run_once(sim, trace, "aise+bmt_lazy") == first

    def test_unsound_scheme_refuses_reset(self, monkeypatch):
        config = MachineConfig.preset("aise+bmt")
        sim = TimingSimulator(config)
        monkeypatch.setattr(integrity_scheme(sim.integ),
                            "warm_reuse_sound", False)
        with pytest.raises(RuntimeError):
            sim.reset_cold()


class TestWarmMachinePool:
    def test_reuses_same_instance_per_fingerprint(self):
        pool = WarmMachinePool()
        config = MachineConfig.preset("aise+bmt")
        sim = pool.acquire(config)
        pool.release(sim)
        assert pool.acquire(config) is sim
        assert pool.counts()["built"] == 1
        assert pool.counts()["reused"] == 1

    def test_distinct_configs_never_share(self):
        pool = WarmMachinePool()
        sim = pool.acquire(MachineConfig.preset("aise+bmt"))
        pool.release(sim)
        other = pool.acquire(MachineConfig.preset("base"))
        assert other is not sim
        assert pool.counts()["built"] == 2

    def test_overlap_is_part_of_the_key(self):
        pool = WarmMachinePool()
        config = MachineConfig.preset("base")
        sim = pool.acquire(config, overlap=0.7)
        pool.release(sim)
        assert pool.acquire(config, overlap=0.5) is not sim

    def test_capacity_bounds_idle_machines(self):
        pool = WarmMachinePool(capacity=1)
        config = MachineConfig.preset("base")
        first, second = pool.acquire(config), pool.acquire(config)
        pool.release(first)
        pool.release(second)
        counts = pool.counts()
        assert counts["idle"] == 1
        assert counts["dropped"] == 1

    def test_unsound_scheme_never_pooled(self, monkeypatch):
        pool = WarmMachinePool()
        config = MachineConfig.preset("aise+bmt")
        sim = pool.acquire(config)
        monkeypatch.setattr(integrity_scheme(sim.integ),
                            "warm_reuse_sound", False)
        pool.release(sim)
        counts = pool.counts()
        assert counts["refused"] == 1
        assert counts["idle"] == 0
        assert pool.acquire(config) is not sim

    def test_pooled_machine_serves_identical_results(self):
        pool = WarmMachinePool()
        config = MachineConfig.preset("aise+bmt")
        trace = api.load_trace("stream", EVENTS)
        warmed = pool.acquire(config)
        run_once(warmed, api.load_trace("chase", EVENTS), "aise+bmt")
        pool.release(warmed)
        again = pool.acquire(config)
        assert again is warmed
        fresh = run_once(TimingSimulator(config), trace, "aise+bmt")
        assert run_once(again, trace, "aise+bmt") == fresh


class TestTraceStore:
    def test_same_instance_shared_across_requests(self):
        store = TraceStore()
        first = store.get("stream", EVENTS)
        second = store.get("stream", EVENTS)
        assert second is first
        assert store.counts() == {"built": 1, "shared": 1, "size": 1,
                                  "capacity": 8}

    def test_digest_matches_trace_digest(self):
        store = TraceStore()
        assert store.digest("stream", EVENTS) == \
            api.load_trace("stream", EVENTS).digest()
        # Memoized: a second call must not rebuild anything.
        built = store.counts()["built"]
        store.digest("stream", EVENTS)
        assert store.counts()["built"] == built

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=1)
        first = store.get("stream", EVENTS)
        store.get("chase", EVENTS)
        assert store.counts()["size"] == 1
        assert store.get("stream", EVENTS) is not first  # rebuilt
