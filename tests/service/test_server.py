"""The sweep service over a real socket.

The headline contract: anything the service returns is byte-identical
to what a cold, in-process facade call produces — the server only ever
amortizes *work*, never changes *results*. Plus the service mechanics:
LRU/disk tiers attribute their hits, tenants interleave safely,
subscribers get validatable per-job progress streams, and malformed
requests come back as error envelopes instead of dropped connections.
"""

import json
import threading

import pytest

from repro import api
from repro.api import schema
from repro.obs.fleet import validate_progress_records
from repro.service import ServiceError, serve_background

EVENTS = 2_000


@pytest.fixture(scope="module")
def server():
    with serve_background() as handle:
        yield handle


class TestSimulate:
    def test_matches_cold_facade_call(self, server):
        with server.client() as client:
            body = client.simulate(workload="gzip", config="aise+bmt",
                                   events=EVENTS)
        cold = api.simulate("gzip", "aise+bmt", events=EVENTS,
                            label="aise+bmt")
        assert body["result"] == cold.to_dict()

    def test_repeat_request_serves_from_memory(self, server):
        knobs = dict(workload="eon", config="base", events=EVENTS)
        with server.client() as client:
            first = client.simulate(**knobs)
            second = client.simulate(**knobs)
        assert second["result"] == first["result"]
        assert second["served_from"] == "lru"

    def test_metrics_knob_changes_key_not_result(self, server):
        with server.client() as client:
            plain = client.simulate(workload="gzip", config="base",
                                    events=EVENTS)
            metered = client.simulate(workload="gzip", config="base",
                                      events=EVENTS, metrics=True)
        assert "metrics" not in plain["result"]
        assert metered["result"]["metrics"]
        stripped = dict(metered["result"])
        del stripped["metrics"]
        assert stripped == plain["result"]


class TestSweepByteIdentity:
    KNOBS = dict(configs=["base", "aise+bmt"], benchmarks=["gzip"],
                 events=EVENTS)

    def test_warm_path_body_equals_cold_payload(self, server):
        with server.client() as client:
            body = client.sweep(**self.KNOBS)
        cold = api.sweep(**self.KNOBS).to_payload()
        assert json.dumps(body, indent=2, sort_keys=True) == \
            json.dumps(cold, indent=2, sort_keys=True)

    def test_pool_path_body_equals_cold_payload(self, server):
        with server.client() as client:
            body = client.sweep(workers=2, **self.KNOBS)
        cold = api.sweep(**self.KNOBS).to_payload()
        assert json.dumps(body, indent=2, sort_keys=True) == \
            json.dumps(cold, indent=2, sort_keys=True)

    def test_sweep_body_carries_no_meta_keys(self, server):
        with server.client() as client:
            body = client.sweep(**self.KNOBS)
        assert set(body) == {"benchmarks", "cells", "configs", "events"}


class TestTenancy:
    def test_interleaved_tenants_get_identical_cells(self, server):
        results = {}

        def run(tenant):
            with server.client(tenant=tenant) as client:
                results[tenant] = client.sweep(
                    configs=["aise+bmt"], benchmarks=["eon"], events=EVENTS)

        threads = [threading.Thread(target=run, args=(t,))
                   for t in ("alice", "bob")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["alice"] == results["bob"]

    def test_concurrent_identical_cells_compute_once(self, tmp_path):
        with serve_background(cache_dir=str(tmp_path)) as handle:
            def run():
                with handle.client() as client:
                    client.simulate(workload="gzip", config="aise+bmt",
                                    events=EVENTS)

            threads = [threading.Thread(target=run) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with handle.client() as client:
                status = client.status()
        # Exactly-once per key: one disk write, however many askers.
        assert status["disk"]["writes"] == 1
        assert sum(status["served"][k] for k in
                   ("lru", "disk", "warm", "cold")) == 6


class TestProgressEvents:
    def test_subscribed_sweep_stream_validates(self, server):
        with server.client(tenant="watcher") as client:
            client.subscribe()
            body = client.sweep(configs=["base"], benchmarks=["gzip", "eon"],
                                events=EVENTS)
            client.status()  # drain any straggling events first
        assert body["cells"]
        jobs = {event["job"] for event in client.events}
        assert len(jobs) == 1
        records = client.progress_records(jobs.pop())
        assert [r["event"] for r in records][0] == "sweep_begin"
        assert [r["event"] for r in records][-1] == "sweep_end"
        assert validate_progress_records(records) == []

    def test_unsubscribed_clients_see_no_events(self, server):
        with server.client() as client:
            client.sweep(configs=["base"], benchmarks=["gzip"], events=EVENTS)
            assert client.events == []


class TestErrors:
    def test_unknown_config_is_an_error_envelope(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError, match="unknown"):
                client.sweep(configs=["warpdrive"], benchmarks=["gzip"],
                             events=EVENTS)
            # The connection survives the error.
            assert client.status()["requests"] > 0

    def test_unknown_benchmark_matches_facade_message(self, server):
        try:
            api.sweep(configs=["base"], benchmarks=["nope"], events=EVENTS)
        except ValueError as exc:
            facade_message = str(exc)
        with server.client() as client:
            with pytest.raises(ServiceError) as err:
                client.sweep(configs=["base"], benchmarks=["nope"],
                             events=EVENTS)
        assert str(err.value) == facade_message

    def test_malformed_line_is_an_error_envelope(self, server):
        with server.client() as client:
            client.sock.sendall(b"this is not json\n")
            envelope = client._recv()
        assert envelope.kind == "error"


class TestOtherOps:
    def test_presets_match_facade(self, server):
        with server.client() as client:
            assert client.presets() == list(api.preset_names())
            full = client.presets(full=True)
        assert full == list(api.preset_names(full=True))
        assert "aise+bmt_lazy" in full

    def test_trace_matches_facade(self, server):
        with server.client() as client:
            body = client.trace(workload="stream", events=EVENTS,
                                interval=512)
        cold = api.trace("stream", events=EVENTS, interval=512).to_payload()
        assert body["result"] == cold["result"]
        assert body["samples"] == cold["samples"]
        assert body["chrome"] == cold["chrome"]

    def test_precompile_reports_shared_lowering(self, server):
        knobs = dict(workload="chase", config="aise+bmt", events=EVENTS)
        with server.client() as client:
            first = client.precompile(**knobs)
            second = client.precompile(**knobs)
        assert first["patterns"]
        # The TraceStore shares one Trace instance, so the second
        # request finds the first request's lowering memoized.
        assert second["cached"] is True

    def test_status_counts_are_coherent(self, server):
        with server.client() as client:
            status = client.status()
        assert status["requests"] >= 1
        assert status["uptime_s"] > 0
        assert set(status["served"]) == {"lru", "disk", "warm", "cold",
                                         "pool"}
        assert status["lru"]["size"] <= status["lru"]["capacity"]


class TestShutdown:
    def test_shutdown_request_stops_the_server(self):
        handle = serve_background()
        with handle.client() as client:
            client.shutdown()
        handle.thread.join(timeout=10)
        assert not handle.thread.is_alive()
