"""Result-cache tiers under concurrent access.

The service promises exactly-once computation per cache key no matter
how many clients ask at once (SingleFlight), an LRU tier whose counters
stay truthful under interleaving, and a disk tier that many threads can
hammer without corrupting a record.
"""

import asyncio
import threading

import pytest

from repro.api import MachineConfig
from repro.evalx.parallel import ResultCache
from repro.service.cache import LruResultTier, SingleFlight
from repro.sim.results import SimResult


def make_result(name="art", cycles=10.0):
    return SimResult(name=name, config_label="base", cycles=cycles,
                     instructions=100)


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self):
        computed = []

        async def main():
            flight = SingleFlight()

            async def thunk():
                computed.append(1)
                await asyncio.sleep(0.01)
                return "value"

            results = await asyncio.gather(
                *(flight.run("key", thunk) for _ in range(32)))
            return flight.counts(), results

        counts, results = asyncio.run(main())
        assert len(computed) == 1
        assert results == ["value"] * 32
        assert counts["led"] == 1
        assert counts["coalesced"] == 31
        assert counts["inflight"] == 0

    def test_distinct_keys_compute_independently(self):
        async def main():
            flight = SingleFlight()

            async def thunk(i):
                await asyncio.sleep(0)
                return i

            results = await asyncio.gather(
                *(flight.run(f"k{i}", lambda i=i: thunk(i)) for i in range(8)))
            return flight.counts(), results

        counts, results = asyncio.run(main())
        assert results == list(range(8))
        assert counts["led"] == 8
        assert counts["coalesced"] == 0

    def test_failure_propagates_to_every_waiter_then_clears(self):
        async def main():
            flight = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise ValueError("boom")

            results = await asyncio.gather(
                *(flight.run("key", boom) for _ in range(4)),
                return_exceptions=True)
            assert all(isinstance(r, ValueError) for r in results)

            async def fine():
                return "recovered"

            # The failed flight must not poison the key.
            return await flight.run("key", fine)

        assert asyncio.run(main()) == "recovered"


class TestLruResultTier:
    def test_counters_sum_to_accesses(self):
        lru = LruResultTier(capacity=4)
        lru.put("a", {"v": 1})
        hits = misses = 0
        for key in ("a", "b", "a", "c", "a"):
            if lru.get(key) is None:
                misses += 1
            else:
                hits += 1
        counts = lru.counts()
        assert (counts["hits"], counts["misses"]) == (hits, misses) == (3, 2)

    def test_eviction_is_least_recently_used(self):
        lru = LruResultTier(capacity=2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        assert lru.get("a") is not None  # refresh a; b is now LRU
        lru.put("c", {"v": 3})
        assert lru.get("b") is None
        assert lru.get("a") is not None
        assert lru.counts()["evictions"] == 1

    def test_re_put_refreshes_without_duplicating(self):
        lru = LruResultTier(capacity=2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        lru.put("a", {"v": 1})  # same fact, recency refresh only
        lru.put("c", {"v": 3})
        assert lru.get("b") is None
        assert len(lru) == 2
        assert lru.counts()["inserts"] == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruResultTier(capacity=0)


class TestDiskCacheUnderThreads:
    def test_concurrent_writers_never_corrupt_a_record(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = make_result()
        key = "deadbeef" * 5
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    cache.put(key, record)
                    got = cache.get(key)
                    assert got is None or got == record
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.corrupt == 0
        assert cache.get(key) == record
        # Every get resolved to exactly one of hit or miss.
        assert cache.hits + cache.misses == 8 * 20 + 1

    def test_lru_and_disk_share_one_key_function(self):
        # The service fronts the disk cache with the LRU tier using the
        # *same* key string; key_for must therefore be a pure static
        # function of the result's inputs.
        config = MachineConfig.preset("aise+bmt")
        key = ResultCache.key_for("digest", config, 0.7, 0.25)
        assert key == ResultCache.key_for("digest", config, 0.7, 0.25)
        assert key != ResultCache.key_for("digest", config, 0.7, 0.25,
                                          metrics=True)
        assert key != ResultCache.key_for("other", config, 0.7, 0.25)
        lru = LruResultTier()
        lru.put(key, {"cycles": 1.0})
        assert lru.get(key) == {"cycles": 1.0}
