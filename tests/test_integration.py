"""Full-stack integration scenarios spanning kernel + machine + attacks."""

import pytest

from repro.attacks import MemoryTamperer
from repro.core import (
    AccessContext,
    IntegrityError,
    MachineConfig,
    SecureMemorySystem,
    aise_bmt_config,
)
from repro.core.counters import MINOR_MAX
from repro.osmodel import Kernel
from repro.mem.layout import PAGE_SIZE

from tests.conftest import make_machine


class TestEndToEndLifecycle:
    """A workload's whole life: boot, run, swap, reboot, attack."""

    def test_long_running_multiprocess_workload(self, kernel_factory):
        kernel = kernel_factory(frames=16, swap_slots=64)
        shells = [kernel.create_process(f"sh{i}") for i in range(4)]
        for i, proc in enumerate(shells):
            kernel.mmap(proc.pid, 0x10000, 4)
            for page in range(4):
                kernel.write(proc.pid, 0x10000 + page * PAGE_SIZE,
                             bytes([i * 16 + page]) * 256)
        # Everyone still sees their own data despite 16 frames for 16+ pages
        # plus kernel churn.
        for i, proc in enumerate(shells):
            for page in range(4):
                expected = bytes([i * 16 + page]) * 256
                assert kernel.read(proc.pid, 0x10000 + page * PAGE_SIZE, 256) == expected
        # Exit half of them; the rest still work; memory is reclaimed.
        for proc in shells[:2]:
            kernel.exit_process(proc.pid)
        for i, proc in enumerate(shells[2:], start=2):
            assert kernel.read(proc.pid, 0x10000, 256) == bytes([i * 16]) * 256

    def test_reboot_then_continue(self):
        """Volatile state dies; the GPC and root survive; data remains
        decryptable and verifiable (section 4.3's non-volatile GPC)."""
        machine = make_machine(data_bytes=16 * PAGE_SIZE)
        machine.write_block(0, b"\x42" * 64)
        machine.write_block(PAGE_SIZE, b"\x43" * 64)
        gpc_before = machine.gpc.value
        machine.reboot()
        assert machine.read_block(0) == b"\x42" * 64
        assert machine.read_block(PAGE_SIZE) == b"\x43" * 64
        # New pages allocated after reboot get fresh LPIDs.
        machine.write_block(2 * PAGE_SIZE, b"\x44" * 64)
        assert machine.gpc.value > gpc_before

    def test_attack_during_multiprocess_run(self, kernel_factory):
        kernel = kernel_factory(frames=16, swap_slots=64)
        proc = kernel.create_process("app")
        kernel.mmap(proc.pid, 0x10000, 1)
        kernel.write(proc.pid, 0x10000, b"critical state")
        paddr = proc.page_table.translate(0x10000)
        MemoryTamperer(kernel.machine).spoof(paddr)
        with pytest.raises(IntegrityError):
            kernel.read(proc.pid, 0x10000, 14)

    def test_counter_overflow_under_os_load(self, kernel_factory):
        """Hammer one block until its 7-bit minor counter wraps; the
        kernel-visible page (and its neighbours) must stay intact."""
        kernel = kernel_factory(frames=16, swap_slots=64)
        proc = kernel.create_process("hammer")
        kernel.mmap(proc.pid, 0x10000, 1)
        kernel.write(proc.pid, 0x10000 + 64, b"neighbour")
        for i in range(MINOR_MAX + 5):
            kernel.write(proc.pid, 0x10000, bytes([i % 256]) * 32)
        engine = kernel.machine.encryption
        assert engine.page_reencryptions >= 1
        assert kernel.read(proc.pid, 0x10000 + 64, 9) == b"neighbour"
        assert kernel.read(proc.pid, 0x10000, 32) == bytes([(MINOR_MAX + 4) % 256]) * 32


class TestCrossSchemeConsistency:
    """The same workload must produce identical plaintext results on
    every configuration — protection is semantically transparent."""

    WORKLOAD = [(i * 64, bytes([i % 251] + [(i * 7) % 256] * 63)) for i in range(40)]

    @pytest.mark.parametrize("enc,integ", [
        ("none", "none"),
        ("aise", "none"),
        ("aise", "mac_only"),
        ("aise", "merkle"),
        ("aise", "bonsai"),
        ("global64", "merkle"),
        ("global32", "bonsai"),
        ("phys_addr", "bonsai"),
        ("direct", "mac_only"),
    ])
    def test_workload_equivalence(self, enc, integ):
        machine = make_machine(encryption=enc, integrity=integ, data_bytes=16 * PAGE_SIZE)
        for address, data in self.WORKLOAD:
            machine.write_block(address, data)
        # Overwrite a few, then read everything back.
        for address, data in self.WORKLOAD[::3]:
            machine.write_block(address, data[::-1])
        for i, (address, data) in enumerate(self.WORKLOAD):
            expected = data[::-1] if i % 3 == 0 else data
            assert machine.read_block(address) == expected, (enc, integ, address)


class TestHmacBackedMachine:
    """The paper-faithful (slow) HMAC-SHA1 / real-AES path end to end."""

    def test_full_datapath_with_reference_crypto(self):
        machine = SecureMemorySystem(
            aise_bmt_config(physical_bytes=4 * PAGE_SIZE), fast_crypto=False
        )
        machine.boot()
        machine.write_block(0, b"\x5a" * 64)
        assert machine.read_block(0) == b"\x5a" * 64
        machine.memory.corrupt(0)
        with pytest.raises(IntegrityError):
            machine.read_block(0)

    def test_reference_and_fast_crypto_agree_on_semantics(self):
        for fast in (True, False):
            machine = SecureMemorySystem(
                aise_bmt_config(physical_bytes=4 * PAGE_SIZE), fast_crypto=fast
            )
            machine.boot()
            machine.write_block(64, b"\x11" * 64)
            assert machine.read_block(64) == b"\x11" * 64


class TestSeedAuditEndToEnd:
    def test_aise_machine_never_reuses_seeds(self):
        from repro.core.seeds import AiseSeedScheme, SeedAudit

        audit = SeedAudit(AiseSeedScheme())
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=8 * PAGE_SIZE, encryption="aise",
                          integrity="none"),
            seed_audit=audit,
        )
        machine.boot()
        for round_ in range(3):
            for block in range(32):
                machine.write_block(block * 64, bytes([round_]) * 64)
        assert audit.reuses == 0

    def test_virt_machine_reuse_demonstrated(self):
        from repro.core.errors import SeedReuseError
        from repro.core.seeds import SeedAudit, VirtualAddressSeedScheme

        audit = SeedAudit(VirtualAddressSeedScheme(include_pid=False))
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=8 * PAGE_SIZE, encryption="virt_addr",
                          integrity="none"),
            seed_audit=audit,
        )
        machine.boot()
        machine.write_block(0, bytes(64), AccessContext(vaddr=0x1000, pid=1))
        with pytest.raises(SeedReuseError):
            # Same virtual address, different process, same counter value:
            # the pad-reuse catastrophe of section 4.2.
            machine.write_block(64, bytes(64), AccessContext(vaddr=0x1000, pid=2))
