"""Shared fixtures: small functional machines for every protection scheme.

Functional tests use 1MB data regions (16-256 pages) so real crypto and
real tree updates stay fast; the schemes' behaviour is size-independent.
"""

from __future__ import annotations

import pytest

from repro.core import MachineConfig, SecureMemorySystem
from repro.osmodel import Kernel

SMALL = 1 << 20  # 1MB data region
TINY = 16 * 4096  # 16 pages


def make_machine(encryption="aise", integrity="bonsai", data_bytes=SMALL, **overrides) -> SecureMemorySystem:
    config = MachineConfig(
        physical_bytes=data_bytes,
        encryption=encryption,
        integrity=integrity,
        **overrides,
    )
    machine = SecureMemorySystem(config)
    machine.boot()
    return machine


@pytest.fixture
def bmt_machine() -> SecureMemorySystem:
    """AISE + Bonsai Merkle Tree (the paper's proposal)."""
    return make_machine()


@pytest.fixture
def mt_machine() -> SecureMemorySystem:
    """Global-64 + standard Merkle tree (the paper's comparison point)."""
    return make_machine(encryption="global64", integrity="merkle")


@pytest.fixture
def mac_machine() -> SecureMemorySystem:
    return make_machine(integrity="mac_only")


@pytest.fixture
def plain_machine() -> SecureMemorySystem:
    return make_machine(encryption="none", integrity="none")


@pytest.fixture
def tiny_kernel() -> Kernel:
    """16 data frames + swap — small enough to force page replacement."""
    machine = make_machine(data_bytes=TINY, swap_bytes=64 * 4096)
    return Kernel(machine, swap_slots=64)


@pytest.fixture
def kernel_factory():
    """Build a kernel over any scheme combination."""

    def build(encryption="aise", integrity="bonsai", frames=16, swap_slots=64, **overrides) -> Kernel:
        machine = make_machine(
            encryption=encryption,
            integrity=integrity,
            data_bytes=frames * 4096,
            swap_bytes=swap_slots * 4096,
            **overrides,
        )
        return Kernel(machine, swap_slots=swap_slots)

    return build
