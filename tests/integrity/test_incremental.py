"""Incremental Merkle tree: lazy subtrees, scheduled updates, eager parity.

The load-bearing property is at the top: for *any* access sequence —
updates, verifies, partial drains, ranged flushes, interleaved however —
``drain(full=True)`` leaves the incremental tree node-for-node identical
to an eager build over the same memory, root register included. Every
acceptance property of the deferred design hangs off that: soundness of
budget-cut drains, tamper detection through a half-built tree, and the
hibernation persistence of the materialization set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IntegrityError
from repro.crypto.mac import Blake2Mac
from repro.integrity.geometry import TreeGeometry
from repro.integrity.incremental import IncrementalMerkleTree
from repro.integrity.merkle import MerkleTree
from repro.mem.dram import BlockMemory

BLOCK = 64
COVERED_BLOCKS = 64
MAC_BYTES = 16
KEY = b"incremental-tree"


def make_pair(coalesce=True, capacity=None):
    """An incremental tree and an eager tree over twin memories."""
    covered = COVERED_BLOCKS * BLOCK
    geometry = TreeGeometry(0, covered, covered, MAC_BYTES)
    lazy_mem = BlockMemory(geometry.nodes_end + 4096)
    eager_mem = BlockMemory(geometry.nodes_end + 4096)
    lazy = IncrementalMerkleTree(
        lazy_mem, geometry, Blake2Mac(KEY, MAC_BYTES * 8),
        trusted_capacity=capacity, coalesce=coalesce,
    )
    eager = MerkleTree(eager_mem, geometry, Blake2Mac(KEY, MAC_BYTES * 8))
    lazy.build()
    eager.build()
    return lazy, lazy_mem, eager, eager_mem


def write_covered(tree, memory, address, data):
    memory.write_block(address, data)
    tree.update(address, data)


def node_region(tree, memory):
    """Every node block's memory content, as a comparable dict."""
    g = tree.geometry
    out = {}
    for level in range(1, g.levels + 1):
        base = g.level_bases[level - 1]
        for index in range(g.level_counts[level - 1]):
            out[(level, index)] = memory.raw_read(base + index * BLOCK)
    return out


# One random action per element: (kind, block, byte, drain_budget).
_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["write", "verify", "drain", "flush"]),
        st.integers(min_value=0, max_value=COVERED_BLOCKS - 1),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1,
    max_size=60,
)


class TestEagerParity:
    """The core invariant: full drain == eager build, bit for bit."""

    @settings(max_examples=40, deadline=None)
    @given(_ACTIONS)
    def test_any_sequence_converges_to_the_eager_tree(self, actions):
        lazy, lazy_mem, eager, eager_mem = make_pair()
        for kind, block, byte, budget in actions:
            addr = block * BLOCK
            if kind == "write":
                data = bytes([byte]) * BLOCK
                write_covered(lazy, lazy_mem, addr, data)
                write_covered(eager, eager_mem, addr, data)
            elif kind == "verify":
                lazy.verify(addr)
                eager.verify(addr)
            elif kind == "drain":
                lazy.drain(budget=budget)
            else:
                lazy.flush_pending(addr, BLOCK)
        lazy.drain(full=True)
        assert lazy.pending_updates() == 0
        assert lazy.root.value == eager.root.value
        assert node_region(lazy, lazy_mem) == node_region(eager, eager_mem)
        assert lazy.materialized_fraction() == 1.0

    @settings(max_examples=20, deadline=None)
    @given(_ACTIONS)
    def test_verification_stays_sound_mid_amortization(self, actions):
        """Every covered block verifies at every intermediate state."""
        lazy, lazy_mem, _, _ = make_pair()
        touched = set()
        for kind, block, byte, budget in actions:
            addr = block * BLOCK
            if kind == "write":
                write_covered(lazy, lazy_mem, addr, bytes([byte]) * BLOCK)
                touched.add(addr)
            elif kind == "drain":
                lazy.drain(budget=budget)
            for a in touched:
                lazy.verify(a)

    def test_untouched_tree_drains_to_eager_over_zero_memory(self):
        lazy, lazy_mem, eager, eager_mem = make_pair()
        lazy.drain(full=True)
        assert lazy.root.value == eager.root.value
        assert node_region(lazy, lazy_mem) == node_region(eager, eager_mem)


class TestLazyMaterialization:
    def test_build_is_o1(self):
        lazy, lazy_mem, _, _ = make_pair()
        assert lazy.materialized_fraction() == 0.0
        assert lazy.pending_updates() == 0
        assert lazy_mem.raw_read(lazy.geometry.level_bases[0]) == bytes(BLOCK)

    def test_first_touch_adopts_exactly_one_subtree(self):
        lazy, lazy_mem, _, _ = make_pair()
        lazy.verify(0)
        assert lazy.adoptions == 1
        lazy.verify(BLOCK)  # same level-1 parent: no second adoption
        assert lazy.adoptions == 1
        lazy.verify((COVERED_BLOCKS - 1) * BLOCK)  # different subtree
        assert lazy.adoptions == 2

    def test_unbuilt_subtrees_cost_no_node_fetches(self):
        lazy, _, _, _ = make_pair()
        lazy.verify(0)
        assert lazy.node_fetches == 0  # zero nodes vouched on-chip


class TestScheduling:
    def test_update_touches_only_the_parent(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x01" * BLOCK)
        assert lazy.pending_updates() == 1
        assert lazy.drained_nodes == 0

    def test_sibling_updates_coalesce(self):
        lazy, lazy_mem, _, _ = make_pair()
        arity = lazy.geometry.arity
        for slot in range(arity):
            write_covered(lazy, lazy_mem, slot * BLOCK, bytes([slot + 1]) * BLOCK)
        assert lazy.scheduled_updates == arity
        assert lazy.coalesced_updates == arity - 1
        assert lazy.coalesce_ratio() == pytest.approx((arity - 1) / arity)
        assert lazy.pending_updates() == 1  # one dirty parent

    def test_budget_cut_drain_is_sound_and_resumable(self):
        lazy, lazy_mem, eager, eager_mem = make_pair()
        for block in (0, 13, 37, 63):
            data = bytes([block]) * BLOCK
            write_covered(lazy, lazy_mem, block * BLOCK, data)
            write_covered(eager, eager_mem, block * BLOCK, data)
        wrote = lazy.drain(budget=2)
        assert wrote == 2
        for block in (0, 13, 37, 63):
            lazy.verify(block * BLOCK)  # sound at the prefix
        lazy.drain(full=True)
        assert lazy.root.value == eager.root.value

    def test_flush_pending_covers_the_range_up_to_the_root(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\xaa" * BLOCK)
        write_covered(lazy, lazy_mem, 63 * BLOCK, b"\xbb" * BLOCK)
        lazy.flush_pending(0, BLOCK)
        # Block 0's whole path (shared root included) drained; block 63's
        # level-1 parent is still queued.
        assert lazy.pending_updates() == 1
        root_after_flush = lazy.root.value
        lazy.drain(full=False)
        assert lazy.root.value != root_after_flush  # 63's path moved it

    def test_noncoalescing_mode_drains_per_update(self):
        lazy, lazy_mem, _, _ = make_pair(coalesce=False)
        for block in (0, 5, 42):
            write_covered(lazy, lazy_mem, block * BLOCK, b"\x07" * BLOCK)
            assert lazy.pending_updates() == 0  # path drained immediately
        assert lazy.drains == 3

    def test_noncoalescing_matches_eager_root_continuously(self):
        lazy, lazy_mem, eager, eager_mem = make_pair(coalesce=False)
        eager.drop_trusted  # eager is the reference; no-op, silences linters
        for block in range(8):
            data = bytes([block + 1]) * BLOCK
            write_covered(lazy, lazy_mem, block * BLOCK, data)
            write_covered(eager, eager_mem, block * BLOCK, data)


class TestTamperDetection:
    def test_leaf_tamper_mid_amortization_detected(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 256, b"\x11" * BLOCK)
        lazy_mem.corrupt(256)
        with pytest.raises(IntegrityError) as err:
            lazy.verify(256)
        assert err.value.kind == "leaf"

    def test_node_tamper_after_drain_detected(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x22" * BLOCK)
        lazy.drain()
        lazy.clear_volatile()
        lazy_mem.corrupt(lazy.geometry.level_bases[0])
        with pytest.raises(IntegrityError) as err:
            lazy.verify(0)
        assert err.value.kind in ("node", "root", "leaf")

    def test_top_node_tamper_detected_against_root_register(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x33" * BLOCK)
        lazy.drain()
        lazy.clear_volatile()
        top_base = lazy.geometry.level_bases[lazy.geometry.levels - 1]
        lazy_mem.corrupt(top_base)
        with pytest.raises(IntegrityError) as err:
            lazy.verify(0)
        assert err.value.kind == "root"

    @settings(max_examples=20, deadline=None)
    @given(_ACTIONS, st.integers(min_value=0, max_value=COVERED_BLOCKS - 1))
    def test_tamper_detected_at_every_amortization_point(self, actions, victim):
        """Measure a block, replay the sequence, tamper, verify: raises —
        whatever partial-drain state the sequence left behind."""
        lazy, lazy_mem, _, _ = make_pair()
        victim_addr = victim * BLOCK
        write_covered(lazy, lazy_mem, victim_addr, b"\x55" * BLOCK)
        for kind, block, byte, budget in actions:
            addr = block * BLOCK
            if kind == "write" and addr != victim_addr:
                write_covered(lazy, lazy_mem, addr, bytes([byte]) * BLOCK)
            elif kind == "drain":
                lazy.drain(budget=budget)
            elif kind == "flush":
                lazy.flush_pending(addr, BLOCK)
        lazy_mem.corrupt(victim_addr)
        with pytest.raises(IntegrityError):
            lazy.verify(victim_addr)


class TestHibernation:
    def test_persist_restore_keeps_materialization(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x66" * BLOCK)
        lazy.flush_pending()
        state = lazy.persist_state()
        assert state["materialized"]

        geometry = lazy.geometry
        resumed = IncrementalMerkleTree(
            lazy_mem, geometry, Blake2Mac(KEY, MAC_BYTES * 8)
        )
        resumed.restore_root(lazy.root.value)
        resumed.restore_state(state)
        resumed.verify(0)

    def test_restore_prevents_readoption_of_tampered_leaves(self):
        """The hibernation attack: tamper a measured block while powered
        down. Without the persisted materialization set the resumed tree
        would re-adopt (bless) it; with it, verification fails."""
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x77" * BLOCK)
        lazy.flush_pending()
        state = lazy.persist_state()
        root = lazy.root.value

        lazy_mem.corrupt(0)  # powered-down tamper
        resumed = IncrementalMerkleTree(
            lazy_mem, lazy.geometry, Blake2Mac(KEY, MAC_BYTES * 8)
        )
        resumed.restore_root(root)
        resumed.restore_state(state)
        with pytest.raises(IntegrityError):
            resumed.verify(0)

    def test_clear_volatile_flushes_the_writeback_queue(self):
        lazy, lazy_mem, _, _ = make_pair()
        write_covered(lazy, lazy_mem, 0, b"\x88" * BLOCK)
        assert lazy.pending_updates() == 1
        lazy.clear_volatile()
        assert lazy.pending_updates() == 0
        assert lazy.trusted_nodes() == 0
        lazy.verify(0)  # re-verifies up from memory against the root


class TestRootMemo:
    """Satellite regression: verify_root memoizes the top-node MAC."""

    def _mac_counting_tree(self, cls):
        covered = COVERED_BLOCKS * BLOCK
        geometry = TreeGeometry(0, covered, covered, MAC_BYTES)
        memory = BlockMemory(geometry.nodes_end + 4096)

        class CountingMac(Blake2Mac):
            calls = 0

            def compute(self, data):
                CountingMac.calls = CountingMac.calls + 1
                return super().compute(data)

        tree = cls(memory, geometry, CountingMac(KEY, MAC_BYTES * 8))
        tree.build()
        return tree, memory, CountingMac

    @pytest.mark.parametrize("cls", [MerkleTree, IncrementalMerkleTree])
    def test_repeated_spot_checks_cost_one_mac(self, cls):
        tree, _, counting = self._mac_counting_tree(cls)
        tree.verify_root()
        after_first = counting.calls
        for _ in range(10):
            tree.verify_root()
        assert counting.calls == after_first  # memo hit: zero extra MACs

    @pytest.mark.parametrize("cls", [MerkleTree, IncrementalMerkleTree])
    def test_update_invalidates_the_memo(self, cls):
        tree, memory, counting = self._mac_counting_tree(cls)
        tree.verify_root()
        write_covered(tree, memory, 0, b"\x99" * BLOCK)
        tree.flush_pending()  # no-op for the eager tree
        before = counting.calls
        tree.verify_root()  # top node changed: memo must miss, MAC recomputed
        assert counting.calls == before + 1
        tree.verify_root()
        assert counting.calls == before + 1

    @pytest.mark.parametrize("cls", [MerkleTree, IncrementalMerkleTree])
    def test_tampered_top_node_still_detected_after_memo_hits(self, cls):
        tree, memory, _ = self._mac_counting_tree(cls)
        tree.verify_root()
        tree.verify_root()
        top_base = tree.geometry.level_bases[tree.geometry.levels - 1]
        memory.corrupt(top_base)
        with pytest.raises(IntegrityError):
            tree.verify_root()
