"""Page Root Directory: the swap-extension of Merkle protection."""

import pytest

from repro.core.errors import IntegrityError
from repro.integrity.pageroot import PageRootDirectory
from repro.mem.dram import BlockMemory


def make_prd(swap_pages: int = 16, mac_bytes: int = 16):
    memory = BlockMemory(64 * 64)
    prd = PageRootDirectory(memory, 0, swap_pages, mac_bytes)
    return prd, memory


class TestDirectory:
    def test_region_size(self):
        prd, _ = make_prd(swap_pages=16, mac_bytes=16)
        assert prd.region_bytes == 4 * 64  # 4 roots per block

    def test_install_lookup_roundtrip(self):
        prd, _ = make_prd()
        prd.install(3, b"\xcd" * 16)
        assert prd.lookup(3) == b"\xcd" * 16

    def test_slots_pack_without_interference(self):
        prd, _ = make_prd()
        prd.install(0, b"\x01" * 16)
        prd.install(1, b"\x02" * 16)
        prd.install(4, b"\x04" * 16)  # next directory block
        assert prd.lookup(0) == b"\x01" * 16
        assert prd.lookup(1) == b"\x02" * 16
        assert prd.lookup(4) == b"\x04" * 16

    def test_reinstall_overwrites(self):
        prd, _ = make_prd()
        prd.install(2, b"\x0a" * 16)
        prd.install(2, b"\x0b" * 16)
        assert prd.lookup(2) == b"\x0b" * 16

    def test_rejects_bad_slot(self):
        prd, _ = make_prd(swap_pages=4)
        with pytest.raises(IndexError):
            prd.lookup(4)
        with pytest.raises(IndexError):
            prd.install(-1, b"\x00" * 16)

    def test_rejects_wrong_root_size(self):
        prd, _ = make_prd()
        with pytest.raises(ValueError):
            prd.install(0, b"\x00" * 8)

    def test_stats(self):
        prd, _ = make_prd()
        prd.install(0, b"\x01" * 16)
        prd.lookup(0)
        prd.lookup(0)
        assert prd.installs == 1
        assert prd.lookups == 2


class TestVerification:
    def test_matching_image_passes(self):
        prd, _ = make_prd()
        prd.install(5, b"\x42" * 16)
        prd.verify_page_image(5, b"\x42" * 16)

    def test_mismatching_image_fails(self):
        prd, _ = make_prd()
        prd.install(5, b"\x42" * 16)
        with pytest.raises(IntegrityError) as err:
            prd.verify_page_image(5, b"\x43" * 16)
        assert err.value.kind == "swap"

    def test_verified_access_hooks_are_used(self):
        """Directory reads/writes flow through the supplied (tree-backed)
        metadata callbacks, so the directory itself is protected."""
        reads, writes = [], []
        memory = BlockMemory(64 * 16)

        def tracked_read(addr):
            reads.append(addr)
            return memory.read_block(addr)

        def tracked_write(addr, raw):
            writes.append(addr)
            memory.write_block(addr, raw)

        prd = PageRootDirectory(memory, 0, 8, 16, tracked_read, tracked_write)
        prd.install(0, b"\x01" * 16)
        prd.lookup(0)
        assert writes == [0]
        assert len(reads) == 2  # read-modify-write + lookup
