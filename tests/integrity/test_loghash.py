"""Log-hash baseline: correct for clean runs, detection only at checks."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.mac import Blake2Mac
from repro.integrity.loghash import LogHashIntegrity
from repro.mem.dram import BlockMemory


def make_loghash():
    memory = BlockMemory(64 * 64)
    scheme = LogHashIntegrity(memory, Blake2Mac(b"log-key", 128))
    return scheme, memory


def write(scheme, memory, address, data):
    memory.write_block(address, data)
    scheme.update_data(address, data)


def read(scheme, memory, address):
    data = memory.read_block(address)
    scheme.verify_data(address, data)
    return data


class TestCleanRuns:
    def test_empty_check_passes(self):
        scheme, _ = make_loghash()
        scheme.check()

    def test_write_read_check_passes(self):
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x01" * 64)
        read(scheme, memory, 0)
        scheme.check()

    def test_many_operations_pass(self):
        scheme, memory = make_loghash()
        for i in range(20):
            write(scheme, memory, (i % 8) * 64, bytes([i]) * 64)
            read(scheme, memory, (i % 8) * 64)
        scheme.check()

    def test_multiple_epochs(self):
        scheme, memory = make_loghash()
        for epoch in range(3):
            write(scheme, memory, 0, bytes([epoch]) * 64)
            scheme.check()
        assert scheme.checks == 3


class TestDeferredDetection:
    def test_tamper_not_caught_at_use(self):
        """The scheme's weakness (paper section 2): a read of tampered
        data does NOT fail immediately."""
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x01" * 64)
        memory.corrupt(0)
        read(scheme, memory, 0)  # no exception — attack unnoticed for now

    def test_tamper_caught_at_next_check(self):
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x01" * 64)
        memory.corrupt(0)
        with pytest.raises(IntegrityError):
            scheme.check()

    def test_tamper_after_read_caught_at_check(self):
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x01" * 64)
        read(scheme, memory, 0)
        memory.corrupt(0)
        with pytest.raises(IntegrityError):
            scheme.check()

    def test_replay_caught_at_check(self):
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"OLD-" * 16)
        stale = memory.read_block(0)
        write(scheme, memory, 0, b"NEW!" * 16)
        memory.raw_write(0, stale)
        with pytest.raises(IntegrityError):
            scheme.check()

    def test_splice_caught_at_check(self):
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x0a" * 64)
        write(scheme, memory, 64, b"\x0b" * 64)
        a, b = memory.read_block(0), memory.read_block(64)
        memory.raw_write(0, b)
        memory.raw_write(64, a)
        with pytest.raises(IntegrityError):
            scheme.check()

    def test_clean_epoch_after_detection_window(self):
        """After a passing check, a fresh epoch starts from current state."""
        scheme, memory = make_loghash()
        write(scheme, memory, 0, b"\x01" * 64)
        scheme.check()
        write(scheme, memory, 64, b"\x02" * 64)
        scheme.check()
