"""MacStore layout and the MAC-only integrity baseline's security envelope."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.mac import Blake2Mac
from repro.integrity.macs import MacOnlyIntegrity, MacStore
from repro.mem.dram import BlockMemory


def make_scheme(covered_blocks: int = 64, mac_bytes: int = 16):
    covered = covered_blocks * 64
    memory = BlockMemory(covered + covered_blocks * mac_bytes + 64)
    store = MacStore(memory, covered, 0, covered, mac_bytes)
    scheme = MacOnlyIntegrity(memory, store, Blake2Mac(b"mac-key", mac_bytes * 8))
    return scheme, store, memory


class TestMacStore:
    def test_region_size(self):
        _, store, _ = make_scheme(covered_blocks=64, mac_bytes=16)
        assert store.region_bytes == 64 * 16  # 16 blocks of 4 MACs

    def test_macs_pack_into_blocks(self):
        _, store, _ = make_scheme()
        assert store.mac_block_address(0) == store.mac_block_address(3 * 64)
        assert store.mac_block_address(4 * 64) == store.mac_block_address(0) + 64

    def test_store_load_roundtrip(self):
        _, store, _ = make_scheme()
        store.store(128, b"\xab" * 16)
        assert store.load(128) == b"\xab" * 16

    def test_neighbours_unaffected(self):
        _, store, _ = make_scheme()
        store.store(0, b"\x01" * 16)
        store.store(64, b"\x02" * 16)
        assert store.load(0) == b"\x01" * 16
        assert store.load(64) == b"\x02" * 16

    def test_rejects_wrong_mac_size(self):
        _, store, _ = make_scheme()
        with pytest.raises(ValueError):
            store.store(0, b"\x00" * 8)

    def test_rejects_out_of_range_address(self):
        _, store, _ = make_scheme()
        with pytest.raises(ValueError):
            store.load(64 * 64)

    @pytest.mark.parametrize("mac_bytes", [4, 8, 16, 32])
    def test_all_mac_sizes(self, mac_bytes):
        _, store, _ = make_scheme(mac_bytes=mac_bytes)
        tag = bytes(range(mac_bytes))
        store.store(64, tag)
        assert store.load(64) == tag


class TestMacOnlySecurity:
    def test_detects_spoofing(self):
        scheme, _, memory = make_scheme()
        memory.write_block(0, b"\x10" * 64)
        scheme.update_data(0, b"\x10" * 64)
        memory.corrupt(0)
        with pytest.raises(IntegrityError):
            scheme.verify_data(0, memory.read_block(0))

    def test_detects_splicing(self):
        """Address binding: moving a valid (block, MAC) pair fails."""
        scheme, store, memory = make_scheme()
        memory.write_block(0, b"\x20" * 64)
        scheme.update_data(0, b"\x20" * 64)
        # Attacker copies block 0 and its MAC to position 1.
        memory.write_block(64, memory.read_block(0))
        store.store(64, store.load(0))
        with pytest.raises(IntegrityError):
            scheme.verify_data(64, memory.read_block(64))

    def test_misses_replay(self):
        """The gap that motivates Merkle trees (paper section 5): a rolled
        back (value, MAC) pair verifies fine under MAC-only protection."""
        scheme, store, memory = make_scheme()
        memory.write_block(0, b"OLD-" * 16)
        scheme.update_data(0, b"OLD-" * 16)
        old_value = memory.read_block(0)
        old_mac = store.load(0)
        memory.write_block(0, b"NEW!" * 16)
        scheme.update_data(0, b"NEW!" * 16)
        # Replay both.
        memory.raw_write(0, old_value)
        store.store(0, old_mac)
        scheme.verify_data(0, memory.read_block(0))  # passes: attack missed
        assert not scheme.detects_replay

    def test_counter_metadata_is_unprotected(self):
        scheme, _, _ = make_scheme()
        assert scheme.verify_metadata(0, b"anything") is None
