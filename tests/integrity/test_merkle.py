"""Functional Merkle tree: build, verify, update, tamper detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IntegrityError
from repro.crypto.mac import Blake2Mac
from repro.integrity.geometry import TreeGeometry
from repro.integrity.merkle import MerkleTree
from repro.mem.dram import BlockMemory


def make_tree(covered_blocks: int = 64, mac_bytes: int = 16, capacity=None):
    covered = covered_blocks * 64
    geometry = TreeGeometry(0, covered, covered, mac_bytes)
    memory = BlockMemory(geometry.nodes_end + 4096)
    tree = MerkleTree(memory, geometry, Blake2Mac(b"tree-key", mac_bytes * 8), trusted_capacity=capacity)
    tree.build()
    return tree, memory


def write_covered(tree, memory, address, data):
    memory.write_block(address, data)
    tree.update(address, data)


class TestBuildVerify:
    def test_fresh_tree_verifies_everything(self):
        tree, memory = make_tree()
        for block in range(64):
            tree.verify(block * 64)

    def test_root_register_set(self):
        tree, _ = make_tree()
        assert tree.root.value is not None

    def test_verify_before_build_fails(self):
        geometry = TreeGeometry(0, 4096, 4096, 16)
        memory = BlockMemory(geometry.nodes_end + 4096)
        tree = MerkleTree(memory, geometry, Blake2Mac(b"k", 128))
        with pytest.raises(IntegrityError):
            tree.verify(0)

    def test_update_then_verify(self):
        tree, memory = make_tree()
        write_covered(tree, memory, 128, b"\x11" * 64)
        tree.verify(128)
        tree.verify(192)  # sibling still fine

    def test_verify_with_supplied_data(self):
        tree, memory = make_tree()
        write_covered(tree, memory, 0, b"\x22" * 64)
        tree.verify(0, b"\x22" * 64)
        with pytest.raises(IntegrityError):
            tree.verify(0, b"\x23" * 64)


class TestTamperDetection:
    def test_data_tamper_detected(self):
        tree, memory = make_tree()
        memory.corrupt(256)
        with pytest.raises(IntegrityError) as err:
            tree.verify(256)
        assert err.value.kind == "leaf"

    def test_leaf_node_tamper_detected(self):
        tree, memory = make_tree()
        leaf_node = tree.geometry.level_bases[0]
        memory.corrupt(leaf_node)
        with pytest.raises(IntegrityError) as err:
            tree.verify(0)
        assert err.value.kind in ("node", "leaf")

    def test_every_level_tamper_detected(self):
        for level in range(3):
            tree, memory = make_tree()
            memory.corrupt(tree.geometry.level_bases[level])
            with pytest.raises(IntegrityError):
                tree.verify(0)

    def test_top_node_tamper_detected_via_root_register(self):
        tree, memory = make_tree()
        memory.corrupt(tree.geometry.root_block_address)
        with pytest.raises(IntegrityError) as err:
            tree.verify(0)
        assert err.value.kind == "root"

    def test_splice_within_tree_detected(self):
        """Swapping two valid covered blocks must fail (position binding)."""
        tree, memory = make_tree()
        write_covered(tree, memory, 0, b"\x0a" * 64)
        write_covered(tree, memory, 64, b"\x0b" * 64)
        a, b = memory.read_block(0), memory.read_block(64)
        memory.raw_write(0, b)
        memory.raw_write(64, a)
        with pytest.raises(IntegrityError):
            tree.verify(0)

    def test_replay_of_block_and_nodes_detected(self):
        """Roll back a block AND its whole MAC chain: the on-chip root
        still exposes the replay (the paper's core security argument)."""
        tree, memory = make_tree()
        write_covered(tree, memory, 0, b"OLD!" * 16)
        stale = {0: memory.read_block(0)}
        for base in tree.geometry.level_bases:
            stale[base] = memory.read_block(base)
        write_covered(tree, memory, 0, b"NEW!" * 16)
        tree._trusted.clear()  # force re-verification through memory
        for address, raw in stale.items():
            memory.raw_write(address, raw)
        with pytest.raises(IntegrityError) as err:
            tree.verify(0)
        assert err.value.kind == "root"


class TestTrustedCache:
    def test_caching_short_circuits_fetches(self):
        tree, _ = make_tree()
        tree.verify(0)
        fetches_before = tree.node_fetches
        tree.verify(64)  # sibling: leaf node already trusted
        assert tree.node_fetches == fetches_before

    def test_capacity_eviction_is_safe(self):
        tree, memory = make_tree(capacity=2)
        for block in range(32):
            write_covered(tree, memory, block * 64, bytes([block]) * 64)
        assert tree.trusted_nodes() <= 2
        for block in range(32):
            tree.verify(block * 64)

    def test_tamper_detected_even_after_node_was_trusted(self):
        """A trusted on-chip copy must not mask later memory tampering:
        verification uses the on-chip copy, so the attacker's change to
        DRAM is simply never believed."""
        tree, memory = make_tree()
        write_covered(tree, memory, 0, b"\x77" * 64)
        tree.verify(0)  # leaf node now trusted on-chip
        leaf_node = tree.geometry.level_bases[0]
        memory.corrupt(leaf_node)  # attacker hits DRAM copy
        tree.verify(0)  # still fine: chip uses its own copy
        tree._trusted.clear()  # ... until the copy is evicted
        with pytest.raises(IntegrityError):
            tree.verify(0)

    def test_invalidate_covered_range(self):
        tree, memory = make_tree(covered_blocks=128)
        for block in range(64):
            tree.verify(block * 64)
        assert tree.trusted_nodes() > 0
        dropped = tree.invalidate_covered_range(0, 4096)
        assert dropped > 0
        # Everything still verifies (re-fetched from intact memory).
        for block in range(64):
            tree.verify(block * 64)


class TestUpdatePropagation:
    def test_update_changes_root(self):
        tree, memory = make_tree()
        before = tree.root.value
        write_covered(tree, memory, 0, b"\x01" * 64)
        assert tree.root.value != before

    def test_update_writes_nodes_through_to_memory(self):
        tree, memory = make_tree()
        leaf_node = tree.geometry.level_bases[0]
        before = memory.read_block(leaf_node)
        write_covered(tree, memory, 0, b"\x02" * 64)
        assert memory.read_block(leaf_node) != before

    def test_fresh_tree_from_same_memory_agrees(self):
        """Rebuilding over the updated memory yields the same root —
        updates and build() are consistent."""
        tree, memory = make_tree()
        for block in (0, 5, 63):
            write_covered(tree, memory, block * 64, bytes([block + 1]) * 64)
        root_after_updates = tree.root.value
        rebuilt = MerkleTree(memory, tree.geometry, tree.mac)
        rebuilt.build()
        assert rebuilt.root.value == root_after_updates


@settings(max_examples=10, deadline=None)
@given(writes=st.lists(
    st.tuples(st.integers(min_value=0, max_value=31), st.binary(min_size=64, max_size=64)),
    max_size=20,
))
def test_random_write_sequences_stay_consistent(writes):
    tree, memory = make_tree(covered_blocks=32)
    shadow = {}
    for block, data in writes:
        write_covered(tree, memory, block * 64, data)
        shadow[block] = data
    for block in range(32):
        tree.verify(block * 64)
        expected = shadow.get(block, bytes(64))
        assert memory.read_block(block * 64) == expected
