"""Merkle tree geometry: level shapes, walks, child ranges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity.geometry import TreeGeometry


class TestShapes:
    def test_64_blocks_arity_4(self):
        """A 4KB page with 128-bit MACs: 64 -> 16 -> 4 -> 1 nodes."""
        g = TreeGeometry(0, 4096, 10000, 16)
        assert g.arity == 4
        assert g.level_counts == [16, 4, 1]
        assert g.levels == 3
        assert g.node_bytes == 21 * 64

    def test_arity_2_doubles_depth(self):
        g = TreeGeometry(0, 4096, 10000, 32)
        assert g.arity == 2
        assert g.level_counts == [32, 16, 8, 4, 2, 1]

    def test_arity_16_shallow(self):
        g = TreeGeometry(0, 4096, 10000, 4)
        assert g.level_counts == [4, 1]

    def test_single_block_degenerate(self):
        g = TreeGeometry(0, 64, 10000, 16)
        assert g.level_counts == [1]

    def test_non_power_of_arity_rounds_up(self):
        g = TreeGeometry(0, 5 * 64, 10000, 16)  # 5 blocks, arity 4
        assert g.level_counts == [2, 1]

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TreeGeometry(0, 0, 0, 16)
        with pytest.raises(ValueError):
            TreeGeometry(0, 100, 0, 16)  # not block multiple
        with pytest.raises(ValueError):
            TreeGeometry(0, 4096, 0, 64)  # arity 1


class TestAddressing:
    def test_level_bases_are_contiguous(self):
        g = TreeGeometry(0, 4096, 10000, 16)
        assert g.level_bases == [10000, 10000 + 16 * 64, 10000 + 20 * 64]
        assert g.nodes_end == 10000 + 21 * 64

    def test_covers(self):
        g = TreeGeometry(1000 * 64, 4096, 0, 16)
        assert g.covers(1000 * 64)
        assert g.covers(1000 * 64 + 4095)
        assert not g.covers(1000 * 64 - 1)
        assert not g.covers(1000 * 64 + 4096)

    def test_child_index_offsets_by_start(self):
        g = TreeGeometry(1024, 4096, 10000, 16)
        assert g.child_index(1024) == 0
        assert g.child_index(1024 + 64) == 1

    def test_node_ref_slots(self):
        g = TreeGeometry(0, 4096, 10000, 16)
        ref = g.node_ref(1, 5)  # child block 5 -> node 1, slot 1
        assert ref.index == 1
        assert ref.slot == 1
        assert ref.address == 10000 + 64

    def test_walk_reaches_top(self):
        g = TreeGeometry(0, 4096, 10000, 16)
        refs = g.walk(0)
        assert [r.level for r in refs] == [1, 2, 3]
        assert refs[-1].address == g.root_block_address

    def test_walk_siblings_share_parent_node(self):
        g = TreeGeometry(0, 4096, 10000, 16)
        walk_a = g.walk(0)
        walk_b = g.walk(64)
        assert walk_a[0].address == walk_b[0].address  # same leaf node
        assert walk_a[0].slot != walk_b[0].slot

    def test_node_child_range_full_and_partial(self):
        g = TreeGeometry(0, 5 * 64, 10000, 16)  # 5 blocks, arity 4
        assert g.node_child_range(1, 0) == (0, 4)
        assert g.node_child_range(1, 1) == (4, 1)  # partial last node

    def test_child_block_address(self):
        g = TreeGeometry(4096, 4096, 10000, 16)
        assert g.child_block_address(1, 2) == 4096 + 128
        assert g.child_block_address(2, 0) == g.level_bases[0]


@settings(max_examples=40, deadline=None)
@given(blocks=st.integers(min_value=1, max_value=2000),
       mac_bytes=st.sampled_from([4, 8, 16, 32]),
       block=st.integers(min_value=0, max_value=1999))
def test_walk_invariants_property(blocks, mac_bytes, block):
    if block >= blocks:
        block = block % blocks
    g = TreeGeometry(0, blocks * 64, 1 << 20, mac_bytes)
    refs = g.walk(block * 64)
    assert len(refs) == g.levels
    # Levels strictly increase; each node contains the previous index.
    index = block
    for ref in refs:
        assert ref.index == index // g.arity
        assert ref.slot == index % g.arity
        assert g.nodes_start <= ref.address < g.nodes_end
        index = ref.index
    assert refs[-1].index == 0  # single top node
    # Level sizes shrink by at least arity-fold (rounded up).
    for a, b in zip([blocks] + g.level_counts, g.level_counts):
        assert b == (a + g.arity - 1) // g.arity
