"""Bonsai Merkle Tree scheme: the paper's security claim, executed.

Claim (section 5.2): with (1) a per-block keyed MAC, (2) counter+address
bound into it, and (3) counter integrity guaranteed by a tree, data
blocks need no tree coverage — spoofing, splicing, and replay are all
caught.
"""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.mac import Blake2Mac
from repro.integrity.bonsai import BonsaiMerkleIntegrity
from repro.integrity.geometry import TreeGeometry
from repro.integrity.macs import MacStore
from repro.integrity.merkle import MerkleTree
from repro.mem.dram import BlockMemory


def make_bonsai(covered_blocks: int = 64, mac_bytes: int = 16):
    """Data region + counter region (1 block) + tree + MAC region."""
    data = covered_blocks * 64
    counter_base = data
    counter_bytes = 64  # one counter block for the whole toy region
    tree_base = counter_base + counter_bytes
    geometry = TreeGeometry(counter_base, counter_bytes, tree_base, mac_bytes)
    mac_base = geometry.nodes_end
    memory = BlockMemory(mac_base + covered_blocks * mac_bytes + 64)
    tree = MerkleTree(memory, geometry, Blake2Mac(b"tree", mac_bytes * 8))
    tree.build()
    store = MacStore(memory, mac_base, 0, data, mac_bytes)
    scheme = BonsaiMerkleIntegrity(memory, store, tree, Blake2Mac(b"mac", mac_bytes * 8))
    return scheme, memory, counter_base


class TestDataPath:
    def test_update_verify_roundtrip(self):
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"\x01" * 64)
        scheme.update_data(0, b"\x01" * 64, counter=5)
        scheme.verify_data(0, memory.read_block(0), counter=5)

    def test_spoof_detected(self):
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"\x02" * 64)
        scheme.update_data(0, b"\x02" * 64, counter=1)
        memory.corrupt(0)
        with pytest.raises(IntegrityError):
            scheme.verify_data(0, memory.read_block(0), counter=1)

    def test_splice_detected(self):
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"\x03" * 64)
        scheme.update_data(0, b"\x03" * 64, counter=1)
        with pytest.raises(IntegrityError):
            scheme.verify_data(64, memory.read_block(0), counter=1)

    def test_replay_detected_via_fresh_counter(self):
        """Replay old (C, M): verification runs with the *fresh* counter
        (guaranteed by the tree), so HK(C_old, ctr_fresh) != M_old."""
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"OLD-" * 16)
        scheme.update_data(0, b"OLD-" * 16, counter=1)
        old_cipher = memory.read_block(0)
        old_mac = scheme.store.load(0)
        memory.write_block(0, b"NEW!" * 16)
        scheme.update_data(0, b"NEW!" * 16, counter=2)
        memory.raw_write(0, old_cipher)
        scheme.store.store(0, old_mac)
        with pytest.raises(IntegrityError):
            scheme.verify_data(0, memory.read_block(0), counter=2)

    def test_counter_binding_is_essential(self):
        """Ablation: if verification used the OLD counter, the replayed
        pair would pass — exactly why counter integrity must be rooted."""
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"OLD-" * 16)
        scheme.update_data(0, b"OLD-" * 16, counter=1)
        old_cipher, old_mac = memory.read_block(0), scheme.store.load(0)
        memory.write_block(0, b"NEW!" * 16)
        scheme.update_data(0, b"NEW!" * 16, counter=2)
        memory.raw_write(0, old_cipher)
        scheme.store.store(0, old_mac)
        scheme.verify_data(0, memory.read_block(0), counter=1)  # would pass!

    def test_mac_region_tamper_detected(self):
        scheme, memory, _ = make_bonsai()
        memory.write_block(0, b"\x04" * 64)
        scheme.update_data(0, b"\x04" * 64, counter=1)
        memory.corrupt(scheme.store.mac_block_address(0))
        with pytest.raises(IntegrityError):
            scheme.verify_data(0, memory.read_block(0), counter=1)


class TestCounterProtection:
    def test_counter_tamper_detected_by_tree(self):
        scheme, memory, counter_base = make_bonsai()
        raw = bytes(range(64))
        memory.write_block(counter_base, raw)
        scheme.update_metadata(counter_base, raw)
        scheme.verify_metadata(counter_base, memory.read_block(counter_base))
        memory.corrupt(counter_base)
        scheme.tree._trusted.clear()
        with pytest.raises(IntegrityError):
            scheme.verify_metadata(counter_base, memory.read_block(counter_base))

    def test_counter_replay_detected_by_tree(self):
        scheme, memory, counter_base = make_bonsai()
        old = bytes([1]) * 64
        memory.write_block(counter_base, old)
        scheme.update_metadata(counter_base, old)
        new = bytes([2]) * 64
        memory.write_block(counter_base, new)
        scheme.update_metadata(counter_base, new)
        memory.raw_write(counter_base, old)
        scheme.tree._trusted.clear()
        with pytest.raises(IntegrityError):
            scheme.verify_metadata(counter_base, memory.read_block(counter_base))

    def test_scheme_advertises_replay_detection(self):
        scheme, _, _ = make_bonsai()
        assert scheme.detects_replay


class TestTreeSizeAdvantage:
    def test_bonsai_tree_is_64x_smaller_per_coverage(self):
        """The size argument of Figure 5: counters are 1/64 of data."""
        data_blocks = 4096
        data_bytes = data_blocks * 64
        counter_bytes = data_bytes // 64
        full = TreeGeometry(0, data_bytes, data_bytes, 16)
        bonsai = TreeGeometry(0, counter_bytes, counter_bytes, 16)
        assert bonsai.node_bytes <= full.node_bytes / 32
        assert bonsai.levels < full.levels
