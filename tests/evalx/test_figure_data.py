"""FigureData container and text rendering edge cases."""

import math

from repro.evalx.figures import FigureData
from repro.evalx.report import render_figure


def make_fig(shown=("art", "mcf")):
    fig = FigureData("T", "test figure", "%", shown=shown)
    fig.add("scheme-a", {"art": 0.10, "mcf": 0.30, "gzip": 0.02})
    fig.add("scheme-b", {"art": 0.05, "mcf": 0.15, "gzip": 0.01})
    return fig


class TestFigureData:
    def test_average_excludes_avg_key(self):
        fig = make_fig().with_averages()
        assert fig.series["scheme-a"]["avg"] == (0.10 + 0.30 + 0.02) / 3
        # Recomputing after with_averages must not fold 'avg' back in.
        assert fig.average("scheme-a") == fig.series["scheme-a"]["avg"]

    def test_with_averages_returns_self(self):
        fig = make_fig()
        assert fig.with_averages() is fig


class TestRenderFigure:
    def test_shown_subset_plus_avg(self):
        text = render_figure(make_fig().with_averages())
        header = text.splitlines()[1]
        assert "art" in header and "mcf" in header and "avg" in header
        assert "gzip" not in header  # not in the shown subset

    def test_sweep_style_renders_all_keys(self):
        fig = FigureData("S", "sweep", "%", shown=())
        fig.add("a", {"32b": 0.1, "64b": 0.2})
        text = render_figure(fig)
        assert "32b" in text and "64b" in text

    def test_missing_key_renders_nan(self):
        fig = FigureData("S", "sweep", "%", shown=())
        fig.add("a", {"x": 0.1})
        fig.add("b", {"y": 0.2})
        text = render_figure(fig)
        assert "nan" in text

    def test_values_render_as_percent(self):
        text = render_figure(make_fig())
        assert "10.0%" in text
        assert "30.0%" in text
