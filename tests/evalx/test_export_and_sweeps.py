"""JSON/CSV exports and the extension sensitivity sweeps."""

import csv
import io
import json

import pytest

from repro.evalx.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    table_to_csv,
    table_to_dict,
    table_to_json,
)
from repro.evalx.figures import FigureData
from repro.evalx.sweeps import counter_cache_sweep, l2_size_sweep, memory_latency_sweep
from repro.evalx.tables import table1, table2


def toy_figure() -> FigureData:
    fig = FigureData("X", "toy", "%")
    fig.add("a", {"art": 0.5, "mcf": 0.25})
    fig.add("b", {"art": 0.1, "mcf": 0.2})
    return fig.with_averages()


class TestFigureExport:
    def test_json_roundtrip(self):
        data = json.loads(figure_to_json(toy_figure()))
        assert data["figure"] == "X"
        assert data["series"]["a"]["art"] == 0.5
        assert "avg" in data["series"]["a"]

    def test_dict_is_plain_data(self):
        data = figure_to_dict(toy_figure())
        assert isinstance(data["series"], dict)
        json.dumps(data)  # fully serializable

    def test_csv_shape(self):
        rows = list(csv.reader(io.StringIO(figure_to_csv(toy_figure()))))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1][0] == "art"
        assert float(rows[1][1]) == 0.5

    def test_csv_handles_missing_keys(self):
        fig = FigureData("X", "t", "%")
        fig.add("a", {"p": 1.0})
        fig.add("b", {"q": 2.0})
        rows = list(csv.reader(io.StringIO(figure_to_csv(fig))))
        assert rows[1] == ["p", "1.0", ""]
        assert rows[2] == ["q", "", "2.0"]


class TestTableExport:
    def test_table1_json(self):
        data = json.loads(table_to_json(table1()))
        assert data["columns"][0] == "Encryption Approach"
        assert len(data["rows"]) == 4

    def test_table2_csv(self):
        rows = list(csv.reader(io.StringIO(table_to_csv(table2()))))
        assert len(rows) == 9  # header + 8 rows
        assert "21.55" in rows[4]


EVENTS = 8_000
BENCHES = ("art", "gcc")


class TestSweeps:
    def test_l2_size_sweep_shape(self):
        fig = l2_size_sweep(sizes_kb=(512, 2048), benches=BENCHES, events=EVENTS)
        mt = fig.series["aise+mt"]
        bmt = fig.series["aise+bmt"]
        # BMT stays cheap at every size; MT's pain shrinks with capacity.
        for key in mt:
            assert bmt[key] < mt[key]
        assert mt["2048KB"] < mt["512KB"]

    def test_memory_latency_sweep_shape(self):
        fig = memory_latency_sweep(latencies=(100, 400), benches=BENCHES, events=EVENTS)
        for label in ("aise+mt", "aise+bmt"):
            assert set(fig.series[label]) == {"100cy", "400cy"}
        assert fig.series["aise+bmt"]["400cy"] < fig.series["aise+mt"]["400cy"]

    def test_counter_cache_sweep_shape(self):
        fig = counter_cache_sweep(sizes_kb=(8, 128), benches=BENCHES, events=EVENTS)
        aise = fig.series["aise"]
        g64 = fig.series["global64"]
        # global64 benefits far more from extra capacity than AISE at the
        # large end (where AISE's reach already covers the working set).
        assert g64["128KB"] > aise["128KB"]
        assert aise["128KB"] < 0.05
