"""The parallel sweep engine: determinism, disk cache, degradation.

The repo invariant under test: ``run_cells``/``run_grid`` with a process
pool produce :class:`SimResult`s identical — field for field, including
after a JSON round-trip — to the serial reference path, and the on-disk
cache turns an immediate re-run into zero simulations.
"""

import json
import os
from concurrent.futures import Future

import pytest

from repro.core.config import CacheConfig, MachineConfig, aise_bmt_config
from repro.evalx import parallel
from repro.evalx.parallel import (
    Cell,
    ResultCache,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    model_fingerprint,
    run_cells,
)
from repro.evalx.runner import Runner
from repro.sim.results import SimResult
from repro.workloads.spec2k import spec_trace

EVENTS = 3_000
BENCHES = ("art", "gcc")


def small_grid(**kwargs) -> dict:
    runner = Runner(events=EVENTS, benchmarks=BENCHES, **kwargs)
    return runner.run_grid(labels=("base", "aise+bmt"))


class TestSerialization:
    def test_simresult_json_roundtrip_is_lossless(self):
        result = Runner(events=EVENTS, benchmarks=BENCHES).result("art", "aise+bmt")
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_simresult_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            SimResult.from_dict({"name": "x", "config_label": "y", "cycles": 1.0,
                                 "instructions": 1, "bogus": 3})

    def test_config_roundtrip(self):
        config = MachineConfig(encryption="aise", integrity="merkle",
                               node_cache=CacheConfig(64 * 1024, 8, 10))
        assert config_from_dict(config_to_dict(config)) == config
        assert config_fingerprint(config) == config_fingerprint(
            config_from_dict(config_to_dict(config)))

    def test_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(aise_bmt_config()) != config_fingerprint(
            MachineConfig(encryption="aise", integrity="merkle"))

    def test_trace_digest_tracks_content(self):
        a = spec_trace("art", EVENTS)
        assert a.digest() == spec_trace("art", EVENTS).digest()
        assert a.digest() != spec_trace("gcc", EVENTS).digest()
        assert a.digest() != spec_trace("art", EVENTS + 1).digest()


class TestDeterminism:
    def test_pool_matches_serial_runner(self):
        """The acceptance invariant: run_grid(workers=...) returns results
        identical to the serial Runner, cell for cell."""
        serial = small_grid()
        pooled = small_grid(workers=4)
        assert serial.keys() == pooled.keys()
        for key in serial:
            assert pooled[key] == serial[key], key

    def test_pool_plus_cache_matches_serial(self, tmp_path):
        serial = small_grid()
        cached = small_grid(workers=2, cache_dir=str(tmp_path))
        for key in serial:
            assert cached[key] == serial[key], key

    def test_twin_cells_share_one_simulation(self, tmp_path):
        """mac_bits=None and an explicit default-size override describe
        the same machine; the engine simulates it once."""
        cache = ResultCache(str(tmp_path))
        config = aise_bmt_config()
        cells = [
            Cell(bench="art", label="aise+bmt", config=config),
            Cell(bench="art", label="aise+bmt", config=config, mac_bits=128),
        ]
        results = run_cells(cells, events=EVENTS, cache=cache)
        assert len(results) == 2
        assert cache.writes == 1
        assert results[cells[0]] == results[cells[1]]


class TestDiskCache:
    def test_warm_rerun_simulates_nothing(self, tmp_path, monkeypatch):
        cold = Runner(events=EVENTS, benchmarks=BENCHES, cache_dir=str(tmp_path))
        grid = cold.run_grid(labels=("base", "aise+bmt"))
        assert cold.cache.writes == len(grid)

        # A fresh process (modelled by a fresh Runner) with the same cache
        # dir must not simulate at all: forbid the simulator outright.
        def boom(*args, **kwargs):
            raise AssertionError("cache miss: TimingSimulator invoked on a warm cache")

        monkeypatch.setattr(parallel.TimingSimulator, "run", boom)
        warm = Runner(events=EVENTS, benchmarks=BENCHES, cache_dir=str(tmp_path))
        regrid = warm.run_grid(labels=("base", "aise+bmt"))
        assert warm.cache.hits == len(grid)
        assert warm.cache.misses == 0
        assert regrid == grid

    def test_corrupt_record_is_recomputed_and_rewritten(self, tmp_path):
        cache_dir = str(tmp_path)
        grid = small_grid(cache_dir=cache_dir)
        records = sorted(os.listdir(cache_dir))
        with open(os.path.join(cache_dir, records[0]), "w") as f:
            f.write("{ not json")
        rerun = Runner(events=EVENTS, benchmarks=BENCHES, cache_dir=cache_dir)
        regrid = rerun.run_grid(labels=("base", "aise+bmt"))
        assert regrid == grid
        assert rerun.cache.corrupt == 1
        assert rerun.cache.writes == 1  # the dropped record was rewritten
        assert sorted(os.listdir(cache_dir)) == records

    def test_key_depends_on_trace_config_and_model(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = spec_trace("art", EVENTS).digest()
        key = cache.key_for(digest, aise_bmt_config(), 0.7, 0.25)
        assert key == cache.key_for(digest, aise_bmt_config(), 0.7, 0.25)
        assert key != cache.key_for(
            digest, MachineConfig(encryption="aise", integrity="merkle"), 0.7, 0.25)
        assert key != cache.key_for(digest, aise_bmt_config(), 0.8, 0.25)
        assert key != cache.key_for("0" * 64, aise_bmt_config(), 0.7, 0.25)

    def test_model_fingerprint_is_stable_in_process(self):
        assert model_fingerprint() == model_fingerprint()

    def test_fingerprint_covers_scheme_package(self):
        from repro.evalx.parallel import timing_modules

        modules = timing_modules()
        assert "repro.schemes" in modules
        assert "repro.schemes.base" in modules
        assert "repro.schemes.encryption" in modules
        assert "repro.schemes.integrity" in modules

    def test_fingerprint_covers_tree_engine_modules(self):
        """Satellite invariant: the tree implementation is part of the
        timing model. Each integrity descriptor declares its engine
        modules (``tree_modules``) and the fingerprint folds them in, so
        an edit to either tree file — or swapping which one a scheme
        builds — invalidates every cached sweep cell."""
        from repro.evalx.parallel import timing_modules

        modules = timing_modules()
        assert "repro.integrity.merkle" in modules
        assert "repro.integrity.incremental" in modules

    def test_tree_modules_reach_scheme_source_files(self):
        from repro.schemes import scheme_source_files

        files = scheme_source_files()
        assert any(f.endswith("integrity/incremental.py") for f in files)
        assert any(f.endswith("integrity/merkle.py") for f in files)

    def test_registering_a_scheme_changes_the_fingerprint(self):
        """Satellite invariant: a new scheme descriptor — even one defined
        outside repro.schemes — must invalidate cached timing results."""
        from repro.schemes import EncryptionScheme, register_encryption, unregister_encryption

        class _FingerprintProbe(EncryptionScheme):
            key = "test_fingerprint_probe"

            def build_engine(self, machine, seed_audit=None):
                raise NotImplementedError

        before = model_fingerprint()
        register_encryption(_FingerprintProbe())
        try:
            assert model_fingerprint() != before
        finally:
            unregister_encryption("test_fingerprint_probe")
        assert model_fingerprint() == before


class _BrokenPool:
    """A ProcessPoolExecutor stand-in whose every future fails."""

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_exception(RuntimeError("worker died"))
        return future


class TestDegradation:
    def test_worker_crash_falls_back_to_serial(self, monkeypatch):
        """Every cell whose worker dies is recomputed in-process, so a
        broken pool degrades throughput, never coverage or results."""
        serial = run_cells(
            [Cell(bench="art", label="aise+bmt", config=aise_bmt_config())],
            events=EVENTS)
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _BrokenPool)
        degraded = run_cells(
            [Cell(bench="art", label="aise+bmt", config=aise_bmt_config())],
            events=EVENTS, workers=2)
        assert degraded == serial


class TestMetricsPlumbing:
    def test_metrics_attach_and_survive_the_disk_cache(self, tmp_path):
        runner = Runner(events=EVENTS, benchmarks=("art",),
                        cache_dir=str(tmp_path), metrics=True)
        result = runner.result("art", "aise+bmt")
        assert result.metrics  # snapshot attached to the cell
        assert result.metrics["sim.demand_misses"] == result.l2_misses

        # A fresh Runner over the same cache dir serves the snapshot from
        # disk, metrics and all.
        warm = Runner(events=EVENTS, benchmarks=("art",),
                      cache_dir=str(tmp_path), metrics=True)
        reread = warm.result("art", "aise+bmt")
        assert warm.cache.hits == 1
        assert reread == result
        assert reread.metrics == result.metrics

    def test_metrics_off_leaves_results_bare(self):
        result = Runner(events=EVENTS, benchmarks=("art",)).result(
            "art", "aise+bmt")
        assert result.metrics == {}

    def test_metrics_flag_does_not_disturb_plain_keys(self, tmp_path):
        """Cache-key stability: keys minted before the metrics flag
        existed must stay valid, so metrics=False (the default) adds
        nothing to the payload and metrics=True forks a separate key."""
        cache = ResultCache(str(tmp_path))
        digest = spec_trace("art", EVENTS).digest()
        plain = cache.key_for(digest, aise_bmt_config(), 0.7, 0.25)
        assert plain == cache.key_for(digest, aise_bmt_config(), 0.7, 0.25,
                                      metrics=False)
        assert plain != cache.key_for(digest, aise_bmt_config(), 0.7, 0.25,
                                      metrics=True)

    def test_pool_metrics_match_serial_metrics(self, tmp_path):
        cells = [Cell(bench=b, label="aise+bmt", config=aise_bmt_config())
                 for b in BENCHES]
        serial = run_cells(cells, events=EVENTS, metrics=True)
        pooled = run_cells(cells, events=EVENTS, workers=2, metrics=True)
        for cell in cells:
            assert pooled[cell] == serial[cell]
            assert pooled[cell].metrics == serial[cell].metrics != {}


class TestStaleTmpRecovery:
    def test_init_sweeps_orphaned_tmp_files(self, tmp_path):
        """Regression: a worker killed between ``mkstemp`` and

        ``os.replace`` leaves an orphaned ``*.tmp`` in the cache root
        forever — nothing references it again. Init now sweeps them
        (they are by construction not yet renamed, hence dead) and
        counts the recovery in ``stale_tmp``.
        """
        cache_dir = str(tmp_path)
        grid = small_grid(cache_dir=cache_dir)
        records = sorted(os.listdir(cache_dir))
        # Fake two mid-write worker deaths.
        for name in ("tmpabc123.tmp", "tmpxyz789.tmp"):
            with open(os.path.join(cache_dir, name), "w") as f:
                f.write('{"key": "half-writ')
        recovered = ResultCache(cache_dir)
        assert recovered.stale_tmp == 2
        assert sorted(os.listdir(cache_dir)) == records  # only records left
        # The real records still serve: a warm re-run simulates nothing.
        rerun = Runner(events=EVENTS, benchmarks=BENCHES, cache_dir=cache_dir)
        assert rerun.run_grid(labels=("base", "aise+bmt")) == grid
        assert rerun.cache.misses == 0

    def test_fresh_cache_reports_no_stale_tmp(self, tmp_path):
        assert ResultCache(str(tmp_path / "new")).stale_tmp == 0
