"""Table generators: Table 1 content, Table 2 exactness, rendering."""

import pytest

from repro.evalx.report import render_table
from repro.evalx.tables import PAPER_TABLE2, table1, table2


class TestTable1:
    def test_four_schemes_in_paper_order(self):
        t = table1()
        names = [row["Encryption Approach"] for row in t.rows]
        assert names == [
            "Global Counter (64-bit)",
            "Counter (Phys Addr)",
            "Counter (Virt Addr)",
            "AISE",
        ]

    def test_key_cells(self):
        t = table1()
        rows = {row["Encryption Approach"]: row for row in t.rows}
        assert rows["AISE"]["IPC Support"] == "Yes"
        assert rows["AISE"]["Latency Hiding"] == "Good"
        assert rows["AISE"]["Other Issues"] == "None"
        assert rows["Counter (Virt Addr)"]["IPC Support"] == "No shared-memory IPC"
        assert "Re-enc on page swap" in rows["Counter (Phys Addr)"]["Other Issues"]
        assert "12.5%" in rows["Global Counter (64-bit)"]["Storage Overhead"]


class TestTable2:
    def test_all_16_cells_match_paper(self):
        t = table2()
        assert len(t.rows) == 8
        for row in t.rows:
            bits = int(row["MAC size"].rstrip("b"))
            paper_mt, paper_pr, paper_ctr, paper_total = PAPER_TABLE2[(bits, row["Scheme"])]
            assert row["MT %"] == pytest.approx(paper_mt, abs=0.01)
            assert row["Page Root %"] == pytest.approx(paper_pr, abs=0.01)
            assert row["Counters %"] == pytest.approx(paper_ctr, abs=0.01)
            assert row["Total %"] == pytest.approx(paper_total, abs=0.01)

    def test_totals_column_echoes_paper(self):
        for row in table2().rows:
            assert row["Total %"] == pytest.approx(row["Paper Total %"], abs=0.01)


class TestRendering:
    def test_render_contains_all_cells(self):
        text = render_table(table1())
        assert "AISE" in text
        assert "Global Counter (64-bit)" in text
        assert text.splitlines()[0].startswith("Table 1")

    def test_render_table2(self):
        text = render_table(table2())
        assert "21.55" in text  # the headline 128-bit AISE+BMT total
        assert "33.51" in text
