"""Figure harness: shape assertions on a reduced benchmark set.

Full-fidelity regeneration lives in ``benchmarks/``; these tests check the
machinery and the paper's qualitative orderings with small traces.
"""

import pytest

from repro.evalx.figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10a,
    figure10b,
    figure11a,
    figure11b,
)
from repro.evalx.runner import Runner

BENCHES = ("art", "swim", "gzip")


@pytest.fixture(scope="module")
def runner():
    return Runner(events=20_000, benchmarks=BENCHES)


class TestFigure6(object):
    def test_proposal_wins_everywhere(self, runner):
        fig = figure6(runner)
        for bench in BENCHES:
            assert fig.series["aise+bmt"][bench] < fig.series["global64+mt"][bench]

    def test_average_row(self, runner):
        fig = figure6(runner)
        assert "avg" in fig.series["aise+bmt"]
        assert fig.series["aise+bmt"]["avg"] < 0.10


class TestFigure7(object):
    def test_aise_cheapest(self, runner):
        fig = figure7(runner)
        assert fig.series["aise"]["avg"] < fig.series["global32"]["avg"]
        assert fig.series["aise"]["avg"] < fig.series["global64"]["avg"]

    def test_global32_beats_global64(self, runner):
        """Smaller stamps cache better (more counters per line)."""
        fig = figure7(runner)
        assert fig.series["global32"]["avg"] <= fig.series["global64"]["avg"]


class TestFigure8(object):
    def test_integrity_dominates_encryption(self, runner):
        """Paper: Merkle maintenance, not encryption, is the main cost."""
        fig = figure8(runner)
        assert fig.series["aise+mt"]["avg"] > fig.series["aise"]["avg"] * 2

    def test_bmt_removes_almost_all_of_it(self, runner):
        fig = figure8(runner)
        mt_extra = fig.series["aise+mt"]["avg"] - fig.series["aise"]["avg"]
        bmt_extra = fig.series["aise+bmt"]["avg"] - fig.series["aise"]["avg"]
        assert bmt_extra < mt_extra / 3


class TestFigure9(object):
    def test_occupancy_ordering(self, runner):
        fig = figure9(runner)
        for bench in BENCHES:
            assert fig.series["no-integrity"][bench] >= 0.99
            assert fig.series["aise+bmt"][bench] > fig.series["aise+mt"][bench]

    def test_bmt_keeps_l2_for_data(self, runner):
        fig = figure9(runner)
        assert fig.series["aise+bmt"]["avg"] > 0.95


class TestFigure10(object):
    def test_miss_rates(self, runner):
        fig = figure10a(runner)
        assert fig.series["aise+mt"]["avg"] > fig.series["base"]["avg"]
        assert fig.series["aise+bmt"]["avg"] == pytest.approx(fig.series["base"]["avg"], abs=0.02)

    def test_bus_utilization(self, runner):
        fig = figure10b(runner)
        assert fig.series["aise+mt"]["avg"] > fig.series["base"]["avg"]


class TestFigure11(object):
    def test_mt_blows_up_with_mac_size(self, runner):
        fig = figure11a(runner, mac_sizes=(64, 256))
        assert fig.series["aise+mt"]["256b"] > fig.series["aise+mt"]["64b"] * 2

    def test_bmt_stays_flat(self, runner):
        fig = figure11a(runner, mac_sizes=(64, 256))
        assert fig.series["aise+bmt"]["256b"] < fig.series["aise+bmt"]["64b"] + 0.05

    def test_occupancy_sensitivity(self, runner):
        fig = figure11b(runner, mac_sizes=(64, 256))
        assert fig.series["aise+mt"]["256b"] < fig.series["aise+mt"]["64b"]
        assert fig.series["aise+bmt"]["256b"] > 0.85


class TestRunnerMachinery(object):
    def test_results_are_memoized(self, runner):
        a = runner.result("art", "base")
        b = runner.result("art", "base")
        assert a is b

    def test_overhead_of_base_is_zero(self, runner):
        assert runner.overhead("art", "base") == 0.0

    def test_mac_bits_variants_are_distinct(self, runner):
        default = runner.result("art", "aise+mt")
        wide = runner.result("art", "aise+mt", mac_bits=256)
        assert default is not wide
        assert default.cycles != wide.cycles
