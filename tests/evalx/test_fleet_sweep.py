"""Fleet capture over real sweeps: the acceptance invariants.

* aggregated sum-kind counters equal the sum of serial per-cell
  snapshots,
* engine-selection counters account for 100% of cells, each attributed
  to exactly one engine (with a fallback reason when not compiled),
* the result payload is byte-identical with fleet capture and the live
  stream enabled or disabled — observation never perturbs results,
* worker-side ResultCache counters surface on the parent cache.
"""

import json

from repro import api
from repro.obs import fleet

BENCHES = ("gcc", "mcf")
CONFIGS = ("base", "aise+bmt")
EVENTS = 3000


def payload_text(run):
    return json.dumps(run.to_payload(), sort_keys=True)


class TestSerialFleetSweep:
    def sweep(self, **kw):
        return api.sweep(CONFIGS, BENCHES, events=EVENTS, **kw)

    def test_observed_payload_byte_identical_to_plain(self):
        plain = self.sweep()
        mem = fleet.MemoryProgressSink()
        observed = self.sweep(fleet=True, live_sinks=[mem])
        assert payload_text(observed) == payload_text(plain)
        assert fleet.validate_progress_records(mem.records) == []

    def test_engines_account_for_every_cell(self):
        report = self.sweep(fleet=True).fleet
        assert report.total == len(BENCHES) * len(CONFIGS)
        assert sum(report.engines.values()) == report.total
        assert fleet.validate_fleet_payload(report.to_payload()) == []
        for record in report.cells:
            assert record["engine"] in fleet.CELL_ENGINES
            if record["engine"] in ("per_event", "reference"):
                assert record["fallback_reason"]
            elif record["engine"] == "compiled":
                assert not record["fallback_reason"]

    def test_aggregate_equals_sum_of_serial_cell_snapshots(self):
        report = self.sweep(fleet=True).fleet
        for metric in ("bus.transfers", "l2.hits", "sim.demand_accesses"):
            expected = sum(
                api.simulate(bench, label, events=EVENTS, label=label,
                             metrics=True).metrics[metric]
                for bench in BENCHES for label in CONFIGS
            )
            assert report.aggregate[metric] == expected, metric

    def test_report_is_json_serializable(self):
        report = self.sweep(fleet=True).fleet
        json.dumps(report.to_payload())


class TestPooledFleetSweep:
    def test_pool_cache_and_live_stream(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        plain = api.sweep(CONFIGS, BENCHES, events=EVENTS)
        mem = fleet.MemoryProgressSink()
        run = api.sweep(CONFIGS, BENCHES, events=EVENTS, workers=2,
                        cache_dir=cache_dir, fleet=True, live_sinks=[mem])
        assert payload_text(run) == payload_text(plain)
        assert fleet.validate_progress_records(mem.records) == []
        report = run.fleet
        assert fleet.validate_fleet_payload(report.to_payload()) == []
        assert sum(report.engines.values()) == report.total == 4

        # Worker-side cache movement surfaced on the parent cache object
        # and in the report's cache block.
        cache = run.runner.cache
        assert cache.worker_writes == 4
        assert cache.worker_misses == 4
        assert report.cache["worker_writes"] == 4
        assert report.cache["misses"] == 4  # the parent's own filter pass

        # cell_start records came over the worker queue.
        starts = [r for r in mem.records if r["event"] == "cell_start"]
        assert len(starts) == 4

        # Second sweep: every cell served from the parent's cache check,
        # attributed to the "cached" pseudo-engine; payload unchanged.
        mem2 = fleet.MemoryProgressSink()
        rerun = api.sweep(CONFIGS, BENCHES, events=EVENTS, workers=2,
                          cache_dir=cache_dir, fleet=True, live_sinks=[mem2])
        assert payload_text(rerun) == payload_text(plain)
        report2 = rerun.fleet
        assert report2.engines == {"cached": 4}
        assert report2.cache["hits"] == 4
        assert fleet.validate_fleet_payload(report2.to_payload()) == []
        assert fleet.validate_progress_records(mem2.records) == []

    def test_fleet_chrome_trace_has_worker_lanes(self, tmp_path):
        from repro.obs.chrome import validate_chrome_trace

        run = api.sweep(CONFIGS, BENCHES, events=EVENTS, workers=2, fleet=True)
        doc = fleet.fleet_chrome_trace(run.fleet)
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
