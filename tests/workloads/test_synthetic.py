"""Synthetic workload generators: knobs do what they claim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.synthetic import (
    WorkloadProfile,
    generate_trace,
    pointer_chase_trace,
    resident_trace,
    streaming_trace,
)


class TestProfileValidation:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", hot_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", write_fraction=-0.1)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", chunk_blocks=0)

    def test_footprint(self):
        profile = WorkloadProfile("p", hot_bytes=1024, cold_bytes=2048)
        assert profile.footprint_bytes == 3072


class TestGeneration:
    def test_length_and_determinism(self):
        profile = WorkloadProfile("p")
        a = generate_trace(profile, 1000, seed=5)
        b = generate_trace(profile, 1000, seed=5)
        assert len(a) == 1000
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.gaps, b.gaps)

    def test_seed_changes_trace(self):
        profile = WorkloadProfile("p")
        a = generate_trace(profile, 1000, seed=1)
        b = generate_trace(profile, 1000, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_addresses_block_aligned(self):
        trace = generate_trace(WorkloadProfile("p"), 500, seed=1)
        assert (trace.addresses % 64 == 0).all()

    def test_hot_fraction_controls_region_split(self):
        profile = WorkloadProfile("p", hot_bytes=64 * 1024, cold_bytes=1 << 20,
                                  hot_fraction=0.8)
        trace = generate_trace(profile, 20_000, seed=1)
        hot_limit = 64 * 1024
        in_hot = (trace.addresses < hot_limit).mean()
        assert in_hot == pytest.approx(0.8, abs=0.02)

    def test_write_fraction(self):
        profile = WorkloadProfile("p", write_fraction=0.4)
        trace = generate_trace(profile, 20_000, seed=1)
        assert trace.write_fraction == pytest.approx(0.4, abs=0.02)

    def test_mean_gap(self):
        profile = WorkloadProfile("p", mean_gap=25)
        trace = generate_trace(profile, 20_000, seed=1)
        assert trace.gaps.mean() == pytest.approx(25, rel=0.1)

    def test_chunking_creates_sequential_runs(self):
        profile = WorkloadProfile("p", hot_fraction=0.0, chunk_blocks=32,
                                  cold_bytes=8 << 20)
        trace = generate_trace(profile, 10_000, seed=1)
        deltas = np.diff(trace.addresses.astype(np.int64))
        sequential = (deltas == 64).mean()
        assert sequential > 0.9

    def test_chunk_one_is_random(self):
        profile = WorkloadProfile("p", hot_fraction=0.0, chunk_blocks=1,
                                  cold_bytes=8 << 20)
        trace = generate_trace(profile, 10_000, seed=1)
        deltas = np.diff(trace.addresses.astype(np.int64))
        assert (deltas == 64).mean() < 0.01


class TestConvenienceGenerators:
    def test_streaming_is_sequential_and_bounded(self):
        trace = streaming_trace(5000, 1 << 20)
        assert trace.footprint_bytes <= (1 << 20) + 8192
        deltas = np.diff(trace.addresses.astype(np.int64))
        assert (deltas == 64).mean() > 0.9

    def test_pointer_chase_spreads(self):
        trace = pointer_chase_trace(5000, 4 << 20)
        # Uniform random over a big region: almost every access is a new block.
        assert trace.footprint_bytes > 0.9 * 5000 * 64

    def test_resident_fits(self):
        trace = resident_trace(5000, footprint_bytes=128 * 1024)
        assert trace.footprint_bytes <= 128 * 1024 + 8192


@settings(max_examples=20, deadline=None)
@given(hot_frac=st.floats(min_value=0.0, max_value=1.0),
       writes=st.floats(min_value=0.0, max_value=1.0),
       events=st.integers(min_value=1, max_value=2000))
def test_generator_total_function_property(hot_frac, writes, events):
    profile = WorkloadProfile("p", hot_fraction=hot_frac, write_fraction=writes)
    trace = generate_trace(profile, events, seed=9)
    assert len(trace) == events
    assert (trace.addresses < profile.footprint_bytes + 8192).all()
    assert set(np.unique(trace.ops)) <= {0, 1}
