"""Multiprogrammed traces and the context-switch pressure they create."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.sim.simulator import TimingSimulator
from repro.sim.trace import Trace
from repro.workloads.multiprogram import DEFAULT_STRIDE, interleave, multiprogrammed_spec
from repro.workloads.synthetic import resident_trace


def toy(name, start, count):
    return Trace.from_lists([(1, 0, (start + i) * 64) for i in range(count)], name=name)


class TestInterleave:
    def test_round_robin_order(self):
        mixed = interleave([toy("a", 0, 4), toy("b", 100, 4)], quantum=2,
                           address_stride=1 << 20)
        blocks = (mixed.addresses // 64).tolist()
        assert blocks == [0, 1, 100 + (1 << 20) // 64, 101 + (1 << 20) // 64,
                          2, 3, 102 + (1 << 20) // 64, 103 + (1 << 20) // 64]

    def test_all_events_preserved(self):
        a = resident_trace(1000, seed=1, name="a")
        b = resident_trace(700, seed=2, name="b")
        mixed = interleave([a, b], quantum=128)
        assert len(mixed) == 1700
        assert int(mixed.gaps.sum()) == int(a.gaps.sum()) + int(b.gaps.sum())

    def test_footprints_disjoint(self):
        a = resident_trace(500, seed=1)
        b = resident_trace(500, seed=2)
        mixed = interleave([a, b], quantum=100)
        first = mixed.addresses[mixed.addresses < DEFAULT_STRIDE]
        second = mixed.addresses[mixed.addresses >= DEFAULT_STRIDE]
        assert len(first) == 500 and len(second) == 500

    def test_shorter_trace_drops_out(self):
        mixed = interleave([toy("a", 0, 10), toy("b", 0, 2)], quantum=2,
                           address_stride=1 << 20)
        assert len(mixed) == 12
        # After b is exhausted, a's events run back to back.
        tail = (mixed.addresses[-6:] // 64).tolist()
        assert tail == [4, 5, 6, 7, 8, 9]

    def test_rejects_empty_and_bad_quantum(self):
        with pytest.raises(ValueError):
            interleave([])
        with pytest.raises(ValueError):
            interleave([toy("a", 0, 2)], quantum=0)

    def test_rejects_overflowing_footprint(self):
        big = Trace.from_lists([(1, 0, DEFAULT_STRIDE + 64)])
        with pytest.raises(ValueError):
            interleave([big, big])

    def test_spec_convenience(self):
        mixed = multiprogrammed_spec(("gzip", "crafty"), events_each=500, quantum=100)
        assert len(mixed) == 1000


class TestContextSwitchPressure:
    def test_switches_widen_the_exposure_gap(self):
        """Context switches evict counter state for everyone, but AISE
        re-warms 64 blocks per counter fetch where global-64 re-warms 8 —
        so multiprogramming widens the absolute exposed-latency gap per
        access (the paper's CMP-era motivation)."""
        solo_gap = self._gap_per_event(quantum=None)
        mixed_gap = self._gap_per_event(quantum=1500)
        assert mixed_gap > solo_gap * 1.3

    @staticmethod
    def _gap_per_event(quantum):
        from repro.workloads.spec2k import spec_trace

        if quantum is None:
            trace = spec_trace("gcc", 24_000)
        else:
            trace = multiprogrammed_spec(("gcc", "vpr", "twolf"), events_each=8_000,
                                         quantum=quantum)
        aise = TimingSimulator(MachineConfig(encryption="aise", integrity="none")).run(trace)
        g64 = TimingSimulator(MachineConfig(encryption="global64", integrity="none")).run(trace)
        return (g64.exposed_decrypt_cycles - aise.exposed_decrypt_cycles) / len(trace)
