"""SPEC2K-like profile suite: coverage and calibration regime."""

import pytest

from repro.core.config import baseline_config
from repro.sim.simulator import TimingSimulator
from repro.workloads.spec2k import (
    MEMORY_BOUND,
    SPEC2K_BENCHMARKS,
    all_spec_traces,
    profile,
    spec_trace,
)


class TestSuiteShape:
    def test_twenty_one_benchmarks(self):
        """The paper uses the 21 C/C++ SPEC2000 benchmarks (section 6)."""
        assert len(SPEC2K_BENCHMARKS) == 21

    def test_memory_bound_subset(self):
        assert set(MEMORY_BOUND) <= set(SPEC2K_BENCHMARKS)
        assert {"art", "mcf", "swim"} <= set(MEMORY_BOUND)

    def test_all_profiles_resolve(self):
        for name in SPEC2K_BENCHMARKS:
            assert profile(name).name == name

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("doom3")

    def test_stable_default_seed(self):
        import numpy as np

        a = spec_trace("art", events=500)
        b = spec_trace("art", events=500)
        assert np.array_equal(a.addresses, b.addresses)

    def test_all_spec_traces(self):
        traces = all_spec_traces(events=100)
        assert set(traces) == set(SPEC2K_BENCHMARKS)
        assert all(len(t) == 100 for t in traces.values())


class TestCalibrationRegime:
    """Base-machine miss rates must sit in the paper's regime: the
    memory-bound subset well above 20%, the resident tail well below."""

    @pytest.mark.parametrize("bench", ["art", "mcf", "swim"])
    def test_memory_bound_miss_above_20pct(self, bench):
        result = TimingSimulator(baseline_config()).run(spec_trace(bench, 30_000), warmup=0.25)
        assert result.l2_miss_rate > 0.20, bench

    @pytest.mark.parametrize("bench", ["crafty", "eon", "gzip"])
    def test_resident_miss_below_15pct(self, bench):
        result = TimingSimulator(baseline_config()).run(spec_trace(bench, 60_000), warmup=0.4)
        assert result.l2_miss_rate < 0.15, bench

    def test_art_has_large_l2_scale_hot_set(self):
        """art's pathology in the paper comes from an L2-sized working set
        that Merkle pollution destroys."""
        p = profile("art")
        assert 0.75 * (1 << 20) <= p.hot_bytes <= 1.25 * (1 << 20)

    def test_mcf_has_poor_locality(self):
        assert profile("mcf").chunk_blocks <= 4

    def test_swim_is_write_heavy(self):
        assert profile("swim").write_fraction >= 0.4
