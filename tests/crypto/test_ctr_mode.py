"""Counter-mode cipher: the XOR-pad datapath of the paper's Figure 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ctr_mode import CHUNKS_PER_BLOCK, CounterModeCipher, MEMORY_BLOCK_SIZE, PadGenerator


def seeds(base: int = 1000) -> list[int]:
    return [base + i for i in range(CHUNKS_PER_BLOCK)]


class TestPadGenerator:
    @pytest.mark.parametrize("fast", [False, True])
    def test_pad_is_deterministic(self, fast):
        gen = PadGenerator(b"\x07" * 32, fast=fast)
        assert gen.pad(42) == gen.pad(42)

    @pytest.mark.parametrize("fast", [False, True])
    def test_distinct_seeds_distinct_pads(self, fast):
        gen = PadGenerator(b"\x07" * 32, fast=fast)
        assert gen.pad(1) != gen.pad(2)

    def test_aes_pad_matches_block_cipher(self):
        """Slow mode must literally be E_K(seed) with the from-scratch AES."""
        from repro.crypto.aes import AES

        key = bytes(range(16))
        gen = PadGenerator(key, fast=False)
        assert gen.pad(5) == AES(key).encrypt_block((5).to_bytes(16, "big"))

    def test_pad_length(self):
        assert len(PadGenerator(b"k" * 16, fast=True).pad(9)) == 16


class TestCounterModeCipher:
    @pytest.mark.parametrize("fast", [False, True])
    def test_roundtrip(self, fast):
        cipher = CounterModeCipher(b"\x01" * 16, fast=fast)
        block = bytes(range(64))
        assert cipher.decrypt(cipher.encrypt(block, seeds()), seeds()) == block

    def test_encryption_changes_bytes(self):
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        block = b"\x00" * 64
        assert cipher.encrypt(block, seeds()) != block

    def test_wrong_seeds_give_garbage(self):
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        block = (b"secret! " * 8)[:64]
        encrypted = cipher.encrypt(block, seeds(1))
        assert cipher.decrypt(encrypted, seeds(2)) != block

    def test_same_seed_same_pad_xor_relation(self):
        """The pad-reuse vulnerability (section 4.1): C1 ^ C2 == P1 ^ P2."""
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        p1 = bytes(range(64))
        p2 = bytes(range(64, 128))
        c1 = cipher.encrypt(p1, seeds())
        c2 = cipher.encrypt(p2, seeds())
        xor_c = bytes(a ^ b for a, b in zip(c1, c2))
        xor_p = bytes(a ^ b for a, b in zip(p1, p2))
        assert xor_c == xor_p  # attacker learns P2 from P1 without the key

    def test_chunk_independence(self):
        """Changing one chunk's seed only re-encrypts that chunk."""
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        block = bytes(64)
        base = cipher.encrypt(block, [10, 11, 12, 13])
        changed = cipher.encrypt(block, [10, 11, 99, 13])
        assert base[:32] == changed[:32]
        assert base[32:48] != changed[32:48]
        assert base[48:] == changed[48:]

    def test_rejects_wrong_block_size(self):
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        with pytest.raises(ValueError):
            cipher.encrypt(b"short", seeds())

    def test_rejects_wrong_seed_count(self):
        cipher = CounterModeCipher(b"\x01" * 16, fast=True)
        with pytest.raises(ValueError):
            cipher.encrypt(bytes(64), [1, 2])


@settings(max_examples=30, deadline=None)
@given(block=st.binary(min_size=MEMORY_BLOCK_SIZE, max_size=MEMORY_BLOCK_SIZE),
       seed_base=st.integers(min_value=0, max_value=2**120))
def test_roundtrip_property(block, seed_base):
    cipher = CounterModeCipher(b"\x5a" * 16, fast=True)
    s = [seed_base + i for i in range(CHUNKS_PER_BLOCK)]
    assert cipher.decrypt(cipher.encrypt(block, s), s) == block
