"""SHA-1 validation against FIPS-180-1 vectors and streaming behaviour."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha1 import SHA1, sha1


class TestFipsVectors:
    def test_abc(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_message(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1(message).hex() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_empty(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_repeated_a_100k(self):
        # Scaled-down variant of the FIPS million-'a' vector; cross-checked
        # against the (independent) stdlib implementation.
        data = b"a" * 100_000
        assert sha1(data) == hashlib.sha1(data).digest()


class TestStreaming:
    def test_incremental_equals_oneshot(self):
        h = SHA1()
        h.update(b"abc")
        h.update(b"dbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
        assert h.hexdigest() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_digest_is_idempotent(self):
        h = SHA1(b"hello")
        assert h.digest() == h.digest()

    def test_update_after_digest(self):
        h = SHA1(b"hello ")
        h.digest()
        h.update(b"world")
        assert h.digest() == sha1(b"hello world")

    def test_copy_forks_state(self):
        h = SHA1(b"prefix-")
        fork = h.copy()
        h.update(b"one")
        fork.update(b"two")
        assert h.digest() == sha1(b"prefix-one")
        assert fork.digest() == sha1(b"prefix-two")

    def test_boundary_lengths(self):
        """Padding edge cases: lengths around the 64-byte block boundary."""
        for n in (54, 55, 56, 57, 63, 64, 65, 127, 128, 129):
            data = bytes(range(256))[:n] * 1
            assert sha1(data) == hashlib.sha1(data).digest(), f"length {n}"

    def test_update_chaining_returns_self(self):
        assert SHA1().update(b"a").update(b"b").digest() == sha1(b"ab")


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=300))
def test_matches_stdlib_property(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@settings(max_examples=25, deadline=None)
@given(data=st.binary(max_size=200), split=st.integers(min_value=0, max_value=200))
def test_split_update_property(data, split):
    split = min(split, len(data))
    h = SHA1()
    h.update(data[:split])
    h.update(data[split:])
    assert h.digest() == sha1(data)
