"""SHA-256 validation against FIPS-180-2 vectors and the stdlib."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import HmacSha256Mac
from repro.crypto.sha256 import SHA256, hmac_sha256, sha256


class TestFipsVectors:
    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(message).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_repeated_a(self):
        data = b"a" * 100_000
        assert sha256(data) == hashlib.sha256(data).digest()


class TestStreaming:
    def test_incremental(self):
        h = SHA256()
        h.update(b"ab")
        h.update(b"c")
        assert h.digest() == sha256(b"abc")

    def test_copy(self):
        h = SHA256(b"pre")
        fork = h.copy()
        h.update(b"-one")
        fork.update(b"-two")
        assert h.digest() == sha256(b"pre-one")
        assert fork.digest() == sha256(b"pre-two")

    def test_boundary_lengths(self):
        for n in (55, 56, 57, 63, 64, 65, 128):
            data = bytes(range(n % 256 or 1)) * 2
            data = data[:n]
            assert sha256(data) == hashlib.sha256(data).digest(), n


class TestHmac256:
    def test_matches_stdlib(self):
        expected = stdlib_hmac.new(b"key", b"msg", hashlib.sha256).digest()
        assert hmac_sha256(b"key", b"msg") == expected

    def test_long_key_hashed_first(self):
        key = b"\xaa" * 100
        expected = stdlib_hmac.new(key, b"m", hashlib.sha256).digest()
        assert hmac_sha256(key, b"m") == expected

    def test_native_256_bit_mac(self):
        """256-bit MACs come from one digest — no counter expansion."""
        mac = HmacSha256Mac(b"key", 256)
        assert mac.compute(b"m") == hmac_sha256(b"key", b"m" + b"\x00\x00\x00\x00")

    def test_mac_verify(self):
        mac = HmacSha256Mac(b"key", 256)
        tag = mac.compute(b"payload")
        assert mac.verify(b"payload", tag)
        assert not mac.verify(b"payload!", tag)


class TestReferenceMacSelection:
    def test_make_mac_picks_sha256_for_wide_macs(self):
        from repro.crypto.mac import HmacSha1Mac, make_mac

        assert isinstance(make_mac(b"k", 256, fast=False), HmacSha256Mac)
        assert isinstance(make_mac(b"k", 128, fast=False), HmacSha1Mac)


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=300))
def test_matches_stdlib_property(data):
    assert sha256(data) == hashlib.sha256(data).digest()


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=1, max_size=80), data=st.binary(max_size=150))
def test_hmac_matches_stdlib_property(key, data):
    assert hmac_sha256(key, data) == stdlib_hmac.new(key, data, hashlib.sha256).digest()
