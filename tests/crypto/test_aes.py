"""AES validation against FIPS-197 vectors plus behavioural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, SBOX, INV_SBOX, expand_key


class TestFipsVectors:
    def test_appendix_c1_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_appendix_c2_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_appendix_c3_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_appendix_b_worked_example(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES(key).decrypt_block(ciphertext) == expected


class TestSboxConstruction:
    """The S-box is derived, not pasted — pin the well-known entries."""

    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox_inverts(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestKeyExpansion:
    def test_round_key_counts(self):
        assert len(expand_key(bytes(16))) == 11
        assert len(expand_key(bytes(24))) == 13
        assert len(expand_key(bytes(32))) == 15

    def test_first_round_key_is_the_key(self):
        key = bytes(range(16))
        assert bytes(expand_key(key)[0]) == key

    def test_rejects_bad_key_sizes(self):
        for bad in (0, 8, 15, 17, 33):
            with pytest.raises(ValueError):
                expand_key(bytes(bad))


class TestBlockInterface:
    def test_rejects_short_block(self):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"short")

    def test_deterministic(self):
        cipher = AES(b"k" * 16)
        block = b"p" * 16
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_different_keys_differ(self):
        block = bytes(16)
        assert AES(b"a" * 16).encrypt_block(block) != AES(b"b" * 16).encrypt_block(block)

    def test_avalanche_single_bit(self):
        cipher = AES(bytes(16))
        base = cipher.encrypt_block(bytes(16))
        flipped = cipher.encrypt_block(b"\x01" + bytes(15))
        differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
        assert differing_bits > 32  # ~64 expected for a good cipher


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       a=st.binary(min_size=16, max_size=16),
       b=st.binary(min_size=16, max_size=16))
def test_injective_property(key, a, b):
    cipher = AES(key)
    if a != b:
        assert cipher.encrypt_block(a) != cipher.encrypt_block(b)
