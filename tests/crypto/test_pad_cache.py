"""The pad memo: byte-identical ciphertext, bounded growth, honest stats.

The fastpath claim is that memoizing pads cannot change a single output
byte (a pad is a pure function of key and seed). These tests pin that
claim at every granularity the memo operates on: per-seed pads, whole-
block pads, and the end-to-end functional machine.
"""

import pytest

from repro import fastpath
from repro.core.machine import SecureMemorySystem
from repro.core.config import MachineConfig
from repro.crypto.ctr_mode import (
    CHUNKS_PER_BLOCK,
    MEMORY_BLOCK_SIZE,
    CounterModeCipher,
    PadGenerator,
)
from repro.crypto.engine import PadCache

KEY = bytes(range(16))
SEEDS = (11, 22, 33, 44)


class TestPadCache:
    def test_miss_then_hit(self):
        cache = PadCache()
        assert cache.lookup(KEY, 7) is None
        cache.insert(KEY, 7, b"x" * 16)
        assert cache.lookup(KEY, 7) == b"x" * 16
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_keyed_by_key_and_seed(self):
        cache = PadCache()
        cache.insert(KEY, 7, b"a" * 16)
        assert cache.lookup(b"other-key-16byte", 7) is None
        assert cache.lookup(KEY, 8) is None

    def test_lru_bound(self):
        cache = PadCache(capacity=4)
        for seed in range(6):
            cache.insert(KEY, seed, bytes([seed]) * 16)
        assert len(cache) == 4
        assert cache.lookup(KEY, 0) is None  # evicted
        assert cache.lookup(KEY, 5) is not None

    def test_lookup_refreshes_lru(self):
        cache = PadCache(capacity=2)
        cache.insert(KEY, 1, b"a" * 16)
        cache.insert(KEY, 2, b"b" * 16)
        cache.lookup(KEY, 1)  # 1 becomes MRU
        cache.insert(KEY, 3, b"c" * 16)  # evicts 2, not 1
        assert cache.lookup(KEY, 1) is not None
        assert cache.lookup(KEY, 2) is None

    def test_insert_refreshes_lru(self):
        """Regression: re-inserting a resident pad must refresh recency.

        ``OrderedDict`` assignment to an existing key keeps the old
        position, so without an explicit ``move_to_end`` a freshly
        re-inserted pad kept its stale LRU slot and was evicted as if
        cold.
        """
        cache = PadCache(capacity=2)
        cache.insert(KEY, 1, b"a" * 16)
        cache.insert(KEY, 2, b"b" * 16)
        cache.insert(KEY, 1, b"a" * 16)  # re-insert: 1 becomes MRU
        cache.insert(KEY, 3, b"c" * 16)  # must evict 2, not 1
        assert cache.lookup(KEY, 1) is not None
        assert cache.lookup(KEY, 2) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PadCache(capacity=0)


class TestPadEquivalence:
    def test_cached_pads_byte_identical(self):
        uncached = PadGenerator(KEY, fast=True, cache=None)
        cached = PadGenerator(KEY, fast=True, cache=PadCache())
        for seed in SEEDS:
            assert cached.pad(seed) == uncached.pad(seed)
            assert cached.pad(seed) == uncached.pad(seed)  # hit path too

    def test_block_pad_int_matches_per_seed_pads(self):
        gen = PadGenerator(KEY, fast=True, cache=PadCache())
        joined = b"".join(gen.pad(seed) for seed in SEEDS)
        assert gen.block_pad_int(SEEDS) == int.from_bytes(joined, "big")
        assert gen.block_pad_int(list(SEEDS)) == int.from_bytes(joined, "big")

    def test_cipher_identical_cache_on_and_off(self):
        block = bytes(range(64))
        with fastpath.forced(True):
            fast = CounterModeCipher(KEY, fast=True)
            assert fast.pad_cache is not None
            out_fast = fast.apply(block, SEEDS)
        with fastpath.forced(False):
            reference = CounterModeCipher(KEY, fast=True)
            assert reference.pad_cache is None
            out_ref = reference.apply(block, SEEDS)
        assert out_fast == out_ref
        assert fast.apply(out_fast, SEEDS) == block  # decrypt round-trips

    def test_pad_int_apply_matches_apply(self):
        block = bytes(range(64))
        with fastpath.forced(True):
            cipher = CounterModeCipher(KEY, fast=True)
        pad = cipher.pad_int(SEEDS)
        assert cipher.apply_pad_int(block, pad) == cipher.apply(block, SEEDS)
        with pytest.raises(ValueError):
            cipher.apply_pad_int(b"short", pad)

    def test_validation_unchanged(self):
        with fastpath.forced(True):
            cipher = CounterModeCipher(KEY, fast=True)
        with pytest.raises(ValueError):
            cipher.apply(bytes(32), SEEDS)
        with pytest.raises(ValueError):
            cipher.apply(bytes(MEMORY_BLOCK_SIZE), SEEDS[:2])
        assert CHUNKS_PER_BLOCK == 4


class TestMachineEquivalence:
    def test_functional_machine_identical_either_gate(self):
        """Same writes, same reads, same DRAM image — gate on or off."""
        images = {}
        reads = {}
        for state in (False, True):
            with fastpath.forced(state):
                machine = SecureMemorySystem(
                    MachineConfig.preset("aise+bmt", physical_bytes=4 * 4096)
                )
                machine.boot()
                for i in range(8):
                    machine.write_block(i * 64, bytes([i]) * 64)
                machine.write_block(0, b"overwrite".ljust(64, b"\0"))
                reads[state] = [machine.read_block(i * 64) for i in range(8)]
                images[state] = [machine.memory.read_block(i * 64) for i in range(8)]
        assert reads[False] == reads[True]
        assert images[False] == images[True]
