"""HMAC-SHA1 validation against RFC 2202 test vectors."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_sha1 import HMACSHA1, hmac_sha1

RFC2202_CASES = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?", "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
    (bytes(range(1, 26)), b"\xcd" * 50, "4c9007f4026250c6bc8414f9bf50c86c2d7235da"),
    (b"\x0c" * 20, b"Test With Truncation", "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
    (b"\xaa" * 80,
     b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data",
     "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"),
]


class TestRfc2202:
    def test_all_vectors(self):
        for key, data, expected in RFC2202_CASES:
            assert hmac_sha1(key, data).hex() == expected, (key, data)


class TestInterface:
    def test_incremental_updates(self):
        mac = HMACSHA1(b"\x0b" * 20)
        mac.update(b"Hi ")
        mac.update(b"There")
        assert mac.hexdigest() == RFC2202_CASES[0][2]

    def test_digest_idempotent(self):
        mac = HMACSHA1(b"key", b"message")
        assert mac.digest() == mac.digest()

    def test_key_sensitivity(self):
        assert hmac_sha1(b"key1", b"m") != hmac_sha1(b"key2", b"m")

    def test_exactly_block_size_key(self):
        key = b"\x42" * 64
        assert hmac_sha1(key, b"data") == stdlib_hmac.new(key, b"data", hashlib.sha1).digest()


@settings(max_examples=40, deadline=None)
@given(key=st.binary(min_size=1, max_size=100), data=st.binary(max_size=200))
def test_matches_stdlib_property(key, data):
    expected = stdlib_hmac.new(key, data, hashlib.sha1).digest()
    assert hmac_sha1(key, data) == expected
