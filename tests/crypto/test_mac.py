"""MAC functions: sizes, truncation/expansion, verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.mac import Blake2Mac, HmacSha1Mac, SUPPORTED_MAC_BITS, make_mac


@pytest.mark.parametrize("cls", [HmacSha1Mac, Blake2Mac])
class TestMacSizes:
    @pytest.mark.parametrize("bits", SUPPORTED_MAC_BITS)
    def test_output_length(self, cls, bits):
        mac = cls(b"key", bits)
        assert len(mac.compute(b"message")) == bits // 8

    def test_rejects_bad_size(self, cls):
        with pytest.raises(ValueError):
            cls(b"key", 33)
        with pytest.raises(ValueError):
            cls(b"key", 0)

    def test_deterministic(self, cls):
        a = cls(b"key", 128)
        b = cls(b"key", 128)
        assert a.compute(b"m") == b.compute(b"m")

    def test_key_matters(self, cls):
        assert cls(b"k1", 128).compute(b"m") != cls(b"k2", 128).compute(b"m")

    def test_message_matters(self, cls):
        mac = cls(b"key", 128)
        assert mac.compute(b"m1") != mac.compute(b"m2")

    def test_verify_accepts_and_rejects(self, cls):
        mac = cls(b"key", 64)
        tag = mac.compute(b"payload")
        assert mac.verify(b"payload", tag)
        assert not mac.verify(b"payload!", tag)
        assert not mac.verify(b"payload", tag[:-1] + bytes([tag[-1] ^ 1]))
        assert not mac.verify(b"payload", tag + b"\x00")  # wrong length


class TestHmacExpansion:
    def test_256_bit_expands_past_sha1_digest(self):
        """SHA-1 yields 20 bytes; 256-bit MACs need counter expansion."""
        mac = HmacSha1Mac(b"key", 256)
        tag = mac.compute(b"m")
        assert len(tag) == 32
        # First 20 bytes come from counter 0; they must not simply repeat.
        assert tag[:12] != tag[20:32]

    def test_truncation_is_prefix(self):
        long = HmacSha1Mac(b"key", 128).compute(b"m")
        short = HmacSha1Mac(b"key", 64).compute(b"m")
        assert long[:8] == short


class TestFactory:
    def test_fast_flag_selects_implementation(self):
        assert isinstance(make_mac(b"k", fast=True), Blake2Mac)
        assert isinstance(make_mac(b"k", fast=False), HmacSha1Mac)

    def test_default_bits(self):
        assert make_mac(b"k").mac_bits == 128


@settings(max_examples=30, deadline=None)
@given(m1=st.binary(max_size=100), m2=st.binary(max_size=100))
def test_collision_resistance_property(m1, m2):
    mac = Blake2Mac(b"key", 128)
    if m1 != m2:
        assert mac.compute(m1) != mac.compute(m2)
