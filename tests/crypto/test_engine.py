"""Crypto-engine latency models: pipelining and initiation intervals."""

from repro.crypto.engine import PipelinedEngine, aes_engine, mac_engine


class TestPipelinedEngine:
    def test_single_issue_latency(self):
        engine = PipelinedEngine(latency=80, stages=16)
        assert engine.issue(100) == 180

    def test_initiation_interval(self):
        engine = PipelinedEngine(latency=80, stages=16)
        assert engine.initiation_interval == 5

    def test_back_to_back_issues_pipeline(self):
        engine = PipelinedEngine(latency=80, stages=16)
        first = engine.issue(0)
        second = engine.issue(0)  # wants cycle 0, pipe busy until 5
        assert first == 80
        assert second == 85

    def test_four_chunks_of_one_block(self):
        """A 64B block is 4 AES chunks: last pad ready at 80 + 3*5 = 95."""
        engine = aes_engine()
        completions = [engine.issue(0) for _ in range(4)]
        assert completions == [80, 85, 90, 95]

    def test_idle_gap_resets_pipeline_pressure(self):
        engine = PipelinedEngine(latency=80, stages=16)
        engine.issue(0)
        assert engine.issue(1000) == 1080

    def test_unpipelined_engine(self):
        engine = PipelinedEngine(latency=50, stages=1)
        assert engine.issue(0) == 50
        assert engine.issue(0) == 100  # fully serialized

    def test_operation_counter_and_reset(self):
        engine = mac_engine()
        engine.issue(0)
        engine.issue(0)
        assert engine.operations == 2
        engine.reset()
        assert engine.operations == 0
        assert engine.issue(0) == engine.latency


class TestPaperParameters:
    def test_aes_defaults(self):
        engine = aes_engine()
        assert engine.latency == 80
        assert engine.stages == 16

    def test_mac_defaults(self):
        assert mac_engine().latency == 80
