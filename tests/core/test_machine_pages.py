"""Page-granular machine primitives: export/install images, invalidation.

These are the hardware hooks the kernel's swap path uses; tested here in
isolation from the OS (frame relocation, no-decryption guarantee, page
roots).
"""

import pytest

from repro.core import IntegrityError
from repro.core.machine import IMAGE_BLOCKS, IMAGE_HEADER
from repro.mem.layout import BLOCK_SIZE, PAGE_SIZE

from tests.conftest import make_machine


@pytest.fixture
def machine():
    return make_machine(data_bytes=16 * PAGE_SIZE)


def fill_page(machine, frame, tag):
    for block in range(4):  # a few distinctive blocks
        machine.write_block(frame * PAGE_SIZE + block * BLOCK_SIZE,
                            bytes([tag, block] * 32))


class TestExport:
    def test_image_shape(self, machine):
        fill_page(machine, 2, tag=9)
        image = machine.export_page_image(2)
        assert len(image) == IMAGE_BLOCKS * BLOCK_SIZE
        assert int.from_bytes(image[:IMAGE_HEADER], "big") == 2 * PAGE_SIZE

    def test_export_is_raw_ciphertext(self, machine):
        """No decryption on export: the image body equals DRAM bytes."""
        fill_page(machine, 2, tag=9)
        image = machine.export_page_image(2)
        for block in range(4):
            dram = machine.memory.raw_read(2 * PAGE_SIZE + block * BLOCK_SIZE)
            offset = IMAGE_HEADER + block * BLOCK_SIZE
            assert image[offset : offset + BLOCK_SIZE] == dram

    def test_export_includes_counter_block(self, machine):
        fill_page(machine, 2, tag=9)
        image = machine.export_page_image(2)
        counters = image[IMAGE_HEADER + PAGE_SIZE : IMAGE_HEADER + PAGE_SIZE + BLOCK_SIZE]
        assert counters == machine.encryption.export_counter_block(2)

    def test_no_pads_generated_during_export(self, machine):
        fill_page(machine, 2, tag=9)
        before = machine.encryption.pads_generated
        machine.export_page_image(2)
        assert machine.encryption.pads_generated == before


class TestInstall:
    def test_same_frame_roundtrip(self, machine):
        fill_page(machine, 2, tag=7)
        image = machine.export_page_image(2)
        machine.invalidate_page(2)
        machine.install_page_image(2, image)
        assert machine.read_block(2 * PAGE_SIZE) == bytes([7, 0] * 32)

    def test_relocated_frame_roundtrip(self, machine):
        """The AISE headline: a page installs at a DIFFERENT frame with
        zero decryption (only MAC recomputation for the new addresses)."""
        fill_page(machine, 2, tag=7)
        image = machine.export_page_image(2)
        before = machine.encryption.pads_generated
        machine.install_page_image(5, image)
        assert machine.encryption.pads_generated == before  # no crypto pads
        for block in range(4):
            expected = bytes([7, block] * 32)
            assert machine.read_block(5 * PAGE_SIZE + block * BLOCK_SIZE) == expected

    def test_page_root_matches_image(self, machine):
        fill_page(machine, 3, tag=1)
        image = machine.export_page_image(3)
        root = machine.page_root_of_image(image)
        assert root == machine.page_root_of_image(image)  # deterministic
        tampered = image[:-1] + bytes([image[-1] ^ 1])
        assert machine.page_root_of_image(tampered) != root

    def test_install_trusts_its_caller(self, machine):
        """``install_page_image`` re-anchors integrity over whatever image
        it is given — it does NOT verify it. That is why the kernel's
        swap-in path MUST check the page-root directory first (section
        5.1); this test documents the contract the PRD check relies on."""
        fill_page(machine, 2, tag=7)
        image = bytearray(machine.export_page_image(2))
        image[IMAGE_HEADER + 5] ^= 0xFF  # corrupt in transit
        # The directory check catches it...
        assert (machine.page_root_of_image(bytes(image))
                != machine.page_root_of_image(machine.export_page_image(2)))
        # ...because install itself would legitimize the tampered bytes.
        machine.install_page_image(6, bytes(image))
        got = machine.read_block(6 * PAGE_SIZE)  # no exception: MACs re-anchored
        assert got != bytes([7, 0] * 32)  # silently wrong without the PRD check


class TestInvalidation:
    def test_invalidate_drops_counter_cache(self, machine):
        fill_page(machine, 2, tag=4)
        assert 2 in machine.encryption._cache
        machine.invalidate_page(2)
        assert 2 not in machine.encryption._cache

    def test_reads_work_after_invalidation(self, machine):
        fill_page(machine, 2, tag=4)
        machine.invalidate_page(2)
        assert machine.read_block(2 * PAGE_SIZE) == bytes([4, 0] * 32)
