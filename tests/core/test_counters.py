"""Counter organizations: packing, overflow, GPC, global counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import (
    GlobalPageCounter,
    MINOR_MAX,
    MonotonicGlobalCounter,
    PageCounterBlock,
    SplitCounterBlock,
)
from repro.core.errors import CounterOverflowError


class TestPageCounterBlock:
    def test_serializes_to_one_memory_block(self):
        block = PageCounterBlock.fresh(lpid=7)
        assert len(block.to_bytes()) == 64  # 8B LPID + 56B of 7-bit minors

    def test_roundtrip(self):
        block = PageCounterBlock(lpid=0xDEADBEEF12345678, minors=[i % 128 for i in range(64)])
        restored = PageCounterBlock.from_bytes(block.to_bytes())
        assert restored.lpid == block.lpid
        assert restored.minors == block.minors

    def test_fresh_is_zeroed(self):
        block = PageCounterBlock.fresh(lpid=1)
        assert block.minors == [0] * 64

    def test_increment(self):
        block = PageCounterBlock.fresh(lpid=1)
        assert block.increment(5) is False
        assert block.minors[5] == 1

    def test_increment_overflow_wraps_and_reports(self):
        block = PageCounterBlock.fresh(lpid=1)
        block.minors[3] = MINOR_MAX
        assert block.increment(3) is True
        assert block.minors[3] == 0

    def test_minor_max_is_7_bits(self):
        assert MINOR_MAX == 127

    def test_rejects_out_of_range_values(self):
        block = PageCounterBlock(lpid=1, minors=[128] + [0] * 63)
        with pytest.raises(ValueError):
            block.to_bytes()
        with pytest.raises(ValueError):
            PageCounterBlock(lpid=1 << 64, minors=[0] * 64).to_bytes()

    def test_rejects_wrong_raw_size(self):
        with pytest.raises(ValueError):
            PageCounterBlock.from_bytes(bytes(63))

    @settings(max_examples=40, deadline=None)
    @given(lpid=st.integers(min_value=0, max_value=2**64 - 1),
           minors=st.lists(st.integers(min_value=0, max_value=127), min_size=64, max_size=64))
    def test_roundtrip_property(self, lpid, minors):
        block = PageCounterBlock(lpid=lpid, minors=list(minors))
        restored = PageCounterBlock.from_bytes(block.to_bytes())
        assert (restored.lpid, restored.minors) == (lpid, list(minors))


class TestSplitCounterBlock:
    def test_overflow_bumps_major(self):
        block = SplitCounterBlock.fresh()
        block.minors[0] = MINOR_MAX
        assert block.increment(0) is True
        assert block.major == 1
        assert block.minors[0] == 0

    def test_roundtrip(self):
        block = SplitCounterBlock(major=42, minors=[1] * 64)
        restored = SplitCounterBlock.from_bytes(block.to_bytes())
        assert (restored.major, restored.minors) == (42, [1] * 64)

    def test_same_layout_as_page_counter_block(self):
        """AISE replaces the split counter's major with the LPID — the
        64-byte layout is identical (paper section 4.3)."""
        split = SplitCounterBlock(major=99, minors=[3] * 64)
        aise = PageCounterBlock(lpid=99, minors=[3] * 64)
        assert split.to_bytes() == aise.to_bytes()


class TestGlobalPageCounter:
    def test_monotonic_unique(self):
        gpc = GlobalPageCounter()
        values = [gpc.next_lpid() for _ in range(100)]
        assert len(set(values)) == 100
        assert values == sorted(values)

    def test_never_issues_zero(self):
        """LPID 0 means 'page never assigned' in the counter block."""
        gpc = GlobalPageCounter()
        assert gpc.next_lpid() >= 1
        with pytest.raises(ValueError):
            GlobalPageCounter(initial=0)

    def test_survives_reboot_via_state(self):
        gpc = GlobalPageCounter()
        gpc.next_lpid()
        gpc.next_lpid()
        state = gpc.save_state()
        rebooted = GlobalPageCounter()
        rebooted.restore_state(state)
        assert rebooted.next_lpid() == 3

    def test_exhaustion_guard(self):
        gpc = GlobalPageCounter(initial=(1 << 64) - 1)
        gpc.next_lpid()
        with pytest.raises(CounterOverflowError):
            gpc.next_lpid()


class TestMonotonicGlobalCounter:
    def test_increments_per_write(self):
        counter = MonotonicGlobalCounter(bits=64)
        assert counter.next_value() == 1
        assert counter.next_value() == 2

    def test_wrap_detected(self):
        counter = MonotonicGlobalCounter(bits=4)
        for _ in range(15):
            counter.next_value()
        assert counter.wraps == 0
        assert counter.next_value() == 1  # wrapped
        assert counter.wraps == 1

    def test_small_counters_wrap_often(self):
        """The motivation for 64-bit global counters (section 4.1)."""
        counter = MonotonicGlobalCounter(bits=4)
        for _ in range(100):
            counter.next_value()
        assert counter.wraps == 6
