"""The log-hash baseline mounted in a full machine (deferred detection)."""

import pytest

from repro.core import IntegrityError

from tests.conftest import make_machine

TINY = 16 * 4096


@pytest.fixture
def machine():
    return make_machine(integrity="loghash", data_bytes=TINY)


class TestLogHashMachine:
    def test_roundtrip(self, machine):
        machine.write_block(0, b"\x31" * 64)
        assert machine.read_block(0) == b"\x31" * 64
        machine.integrity.check()  # clean epoch

    def test_tampered_read_returns_garbage_silently(self, machine):
        """The scheme's documented weakness at machine level: the read
        itself succeeds (garbage plaintext), no exception."""
        machine.write_block(0, b"\x32" * 64)
        machine.memory.corrupt(0)
        got = machine.read_block(0)  # no exception
        assert got != b"\x32" * 64

    def test_tamper_caught_at_periodic_check(self, machine):
        machine.write_block(0, b"\x33" * 64)
        machine.memory.corrupt(0)
        machine.read_block(0)
        with pytest.raises(IntegrityError):
            machine.integrity.check()

    def test_replay_caught_at_check(self, machine):
        machine.write_block(0, b"OLD!" * 16)
        stale = machine.memory.raw_read(0)
        machine.write_block(0, b"NEW!" * 16)
        machine.memory.raw_write(0, stale)
        with pytest.raises(IntegrityError):
            machine.integrity.check()

    def test_detection_window_is_the_interval(self, machine):
        """Everything between two checks is one blind window: many reads
        of tampered data pass; the very next check fails."""
        for block in range(4):
            machine.write_block(block * 64, bytes([block]) * 64)
        machine.integrity.check()
        machine.memory.corrupt(128)
        for _ in range(5):
            machine.read_block(128)  # all silently wrong
        with pytest.raises(IntegrityError):
            machine.integrity.check()
