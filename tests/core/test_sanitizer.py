"""Runtime sanitizer: arming semantics and each wired seam.

Every test manages arming explicitly (an autouse fixture disarms first
and restores afterwards) so the module behaves identically under plain
pytest and under ``REPRO_SANITIZE=1`` CI runs.
"""

from __future__ import annotations

import pytest

from repro.core import sanitizer
from repro.core.config import MachineConfig
from repro.core.counters import (
    FlatCounterStore,
    GlobalPageCounter,
    MonotonicGlobalCounter,
    PageCounterBlock,
)
from repro.core.errors import IntegrityError
from repro.core.machine import SecureMemorySystem
from repro.core.sanitizer import SanitizerConfig, SanitizerError, sanitized
from repro.mem.cache import DATA, SetAssociativeCache
from repro.osmodel.swap import SwapDevice


@pytest.fixture(autouse=True)
def _pristine_sanitizer():
    previous = sanitizer.active()
    sanitizer.disarm()
    yield
    # Restore the pre-test state either way: re-arm what was armed, and
    # disarm anything a test armed and left behind (otherwise an armed
    # config leaks into the rest of the suite).
    if previous is not None:
        sanitizer.arm(previous)
    else:
        sanitizer.disarm()


class TestArming:
    def test_disarmed_by_default(self):
        assert sanitizer.active() is None
        assert not sanitizer.enabled("counter_monotonicity")
        assert sanitizer.spot_interval() == 0

    def test_arm_and_disarm(self):
        config = sanitizer.arm()
        assert config == SanitizerConfig()
        assert sanitizer.enabled("swap_ownership")
        sanitizer.disarm()
        assert sanitizer.active() is None

    def test_sanitized_context_restores_prior_state(self):
        with sanitized(spot_check_interval=1) as config:
            assert config.spot_check_interval == 1
            assert sanitizer.enabled("cache_inclusion")
        assert sanitizer.active() is None

    def test_sanitized_overrides_nest(self):
        sanitizer.arm(SanitizerConfig(swap_ownership=False))
        with sanitized(counter_monotonicity=False):
            assert not sanitizer.enabled("counter_monotonicity")
            assert not sanitizer.enabled("swap_ownership")  # inherited
        assert sanitizer.enabled("counter_monotonicity")

    def test_check_raises_with_message(self):
        with pytest.raises(SanitizerError, match="boom"):
            sanitizer.check(False, "boom")
        sanitizer.check(True, "never raised")


class TestCounterSeam:
    def test_out_of_range_minor_is_caught_when_armed(self):
        block = PageCounterBlock.fresh(lpid=1)
        block.minors[0] = 999  # simulate a write that bypassed the API
        with sanitized(), pytest.raises(SanitizerError):
            block.increment(0)

    def test_disarmed_increment_does_not_check(self):
        block = PageCounterBlock.fresh(lpid=1)
        block.minors[0] = 999
        assert block.increment(0) is True  # wraps silently, no sanitizer

    def test_normal_increments_pass_armed(self):
        block = PageCounterBlock.fresh(lpid=1)
        with sanitized():
            for _ in range(200):  # crosses one wrap
                block.increment(0)

    def test_global_counter_rollback_is_caught(self):
        ctr = MonotonicGlobalCounter(bits=8)
        ctr._value = -5  # simulate corrupted counter state
        with sanitized(), pytest.raises(SanitizerError):
            ctr.next_value()

    def test_flat_store_negative_counter_is_caught(self):
        store = FlatCounterStore(counter_bits=8)
        store._values[0] = -1
        with sanitized(), pytest.raises(SanitizerError):
            store.increment(0)

    def test_gpc_zero_state_is_caught(self):
        gpc = GlobalPageCounter()
        with sanitized(), pytest.raises(SanitizerError):
            gpc.restore_state(0)
        gpc.restore_state(0)  # disarmed: the raw poke is allowed


class TestSwapSeam:
    def test_dma_to_unallocated_slot_is_caught(self):
        swap = SwapDevice(slots=2)
        image = b"\x01" * swap.slot_bytes
        with sanitized():
            with pytest.raises(SanitizerError):
                swap.dma_write(0, image)
            with pytest.raises(SanitizerError):
                swap.dma_read(0)

    def test_allocated_slot_round_trips_armed(self):
        swap = SwapDevice(slots=2)
        image = b"\x02" * swap.slot_bytes
        with sanitized():
            slot = swap.allocate_slot()
            swap.dma_write(slot, image)
            assert swap.dma_read(slot) == image

    def test_size_validation_still_wins_over_ownership(self):
        swap = SwapDevice(slots=1)
        with sanitized(), pytest.raises(ValueError):
            swap.dma_write(0, b"short")

    def test_adversary_interface_bypasses_ownership(self):
        swap = SwapDevice(slots=1)
        image = b"\x03" * swap.slot_bytes
        slot = swap.allocate_slot()
        swap.dma_write(slot, image)
        swap.release_slot(slot)
        with sanitized():
            captured = swap.snapshot_slot(slot)  # physical read: no check
            swap.corrupt_slot(slot)
            swap.replay_slot(slot, captured)  # physical write: no check
        assert swap.snapshot_slot(slot) == image


class TestCacheSeam:
    def make_cache(self):
        # 8 sets x 2 ways of 64B lines.
        return SetAssociativeCache(1024, assoc=2, block_size=64, name="t")

    def test_clean_fills_pass_armed(self):
        cache = self.make_cache()
        with sanitized(spot_check_interval=1):
            for block in range(64):
                cache.insert(block * 64, DATA)

    def test_overfull_set_is_caught(self):
        cache = self.make_cache()
        # Stuff set 0 beyond its associativity behind the API's back.
        for block in (0, 8, 16):
            cache._sets[0][block] = (False, DATA)
        with sanitized(), pytest.raises(SanitizerError):
            cache.insert(24 * 64, DATA)

    def test_tally_drift_is_caught_by_recount(self):
        cache = self.make_cache()
        cache.insert(0, DATA)
        cache._class_lines[DATA] += 5  # corrupt the occupancy bookkeeping
        with sanitized(spot_check_interval=1), pytest.raises(SanitizerError):
            cache.insert(64, DATA)


class TestBmtSeam:
    def make_machine(self):
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=16 * 4096, encryption="aise", integrity="bonsai")
        )
        machine.boot()
        return machine

    def test_armed_writes_pass_on_healthy_machine(self):
        machine = self.make_machine()
        with sanitized(spot_check_interval=1):
            for i in range(4):
                machine.write_block(i * 64, bytes([i]) * 64)
                assert machine.read_block(i * 64) == bytes([i]) * 64

    def test_update_ordering_bug_is_caught(self):
        machine = self.make_machine()
        tree = machine.integrity.tree
        # Simulate a Freij-style update-ordering bug: tree nodes are
        # rewritten but the root register update is dropped.
        tree.root.store = lambda mac: None
        with sanitized(spot_check_interval=1), pytest.raises(IntegrityError) as err:
            machine.write_block(0, b"\xaa" * 64)
        assert err.value.kind == "root"

    def test_bug_goes_unnoticed_when_disarmed(self):
        machine = self.make_machine()
        machine.integrity.tree.root.store = lambda mac: None
        machine.write_block(0, b"\xaa" * 64)  # no spot check, no error

    def test_spot_check_interval_spaces_checks(self):
        machine = self.make_machine()
        calls = []
        original = machine.integrity.tree.verify_root
        machine.integrity.tree.verify_root = lambda: calls.append(1) or original()
        with sanitized(spot_check_interval=4):
            for i in range(8):
                machine.write_block(i * 64, b"\x55" * 64)
        # 8 data writes -> 8 counter-block updates -> a check on the 4th
        # and the 8th.
        assert len(calls) == 2

    def test_lowered_interval_applies_immediately(self):
        machine = self.make_machine()
        with sanitized():  # default interval: 64 updates between checks
            machine.write_block(0, b"\x66" * 64)
        machine.integrity.tree.root.store = lambda mac: None
        with sanitized(spot_check_interval=1), pytest.raises(IntegrityError):
            machine.write_block(64, b"\x77" * 64)
