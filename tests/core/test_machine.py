"""The functional secure processor: datapath correctness per scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessContext,
    IntegrityError,
    MachineConfig,
    SecureMemorySystem,
)
from repro.core.counters import MINOR_MAX
from repro.core.seeds import SeedAudit, AiseSeedScheme

from tests.conftest import make_machine

ALL_SCHEMES = [
    ("aise", "bonsai"),
    ("aise", "merkle"),
    ("aise", "mac_only"),
    ("aise", "none"),
    ("global64", "merkle"),
    ("global32", "none"),
    ("phys_addr", "bonsai"),
    ("virt_addr", "bonsai"),
    ("direct", "none"),
    ("none", "none"),
]


class TestRoundTrips:
    @pytest.mark.parametrize("enc,integ", ALL_SCHEMES)
    def test_write_read_roundtrip(self, enc, integ):
        machine = make_machine(encryption=enc, integrity=integ, data_bytes=64 * 4096)
        ctx = AccessContext(vaddr=0x4000, pid=3)
        machine.write_block(0x4000, bytes(range(64)), ctx)
        assert machine.read_block(0x4000, ctx) == bytes(range(64))

    @pytest.mark.parametrize("enc", ["aise", "global64", "phys_addr", "direct"])
    def test_memory_holds_ciphertext(self, enc):
        machine = make_machine(encryption=enc, integrity="none", data_bytes=16 * 4096)
        plaintext = b"\x00" * 64
        machine.write_block(0, plaintext)
        assert machine.memory.raw_read(0) != plaintext

    def test_unencrypted_machine_holds_plaintext(self):
        machine = make_machine(encryption="none", integrity="none", data_bytes=16 * 4096)
        machine.write_block(0, b"\x42" * 64)
        assert machine.memory.raw_read(0) == b"\x42" * 64

    def test_counter_mode_hides_equal_plaintexts(self):
        """Unlike direct encryption, equal blocks encrypt differently."""
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(0, b"\x37" * 64)
        machine.write_block(64, b"\x37" * 64)
        assert machine.memory.raw_read(0) != machine.memory.raw_read(64)

    def test_direct_encryption_leaks_equality(self):
        """The statistical weakness of direct encryption (section 2)."""
        machine = make_machine(encryption="direct", integrity="none", data_bytes=16 * 4096)
        machine.write_block(0, b"\x37" * 64)
        machine.write_block(64, b"\x37" * 64)
        assert machine.memory.raw_read(0) == machine.memory.raw_read(64)

    def test_rewrite_same_block_changes_ciphertext(self):
        """Temporal uniqueness: the counter bump refreshes the pad."""
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(0, b"\x55" * 64)
        first = machine.memory.raw_read(0)
        machine.write_block(0, b"\x55" * 64)
        assert machine.memory.raw_read(0) != first

    def test_requires_boot(self):
        machine = SecureMemorySystem(MachineConfig(physical_bytes=16 * 4096))
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            machine.read_block(0)

    def test_rejects_bad_addresses(self):
        machine = make_machine(data_bytes=16 * 4096)
        with pytest.raises(ValueError):
            machine.read_block(3)
        with pytest.raises(ValueError):
            machine.write_block(16 * 4096, bytes(64))  # metadata region


class TestByteInterface:
    def test_unaligned_read_write(self, bmt_machine):
        bmt_machine.write_bytes(100, b"hello, world")
        assert bmt_machine.read_bytes(100, 12) == b"hello, world"

    def test_spanning_blocks(self, bmt_machine):
        data = bytes(range(200))
        bmt_machine.write_bytes(60, data)
        assert bmt_machine.read_bytes(60, 200) == data

    def test_read_modify_write_preserves_neighbours(self, bmt_machine):
        bmt_machine.write_block(0, b"\xaa" * 64)
        bmt_machine.write_bytes(16, b"XY")
        block = bmt_machine.read_block(0)
        assert block[:16] == b"\xaa" * 16
        assert block[16:18] == b"XY"
        assert block[18:] == b"\xaa" * 46

    @settings(max_examples=15, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=300), data=st.binary(min_size=1, max_size=200))
    def test_roundtrip_property(self, offset, data):
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_bytes(offset, data)
        assert machine.read_bytes(offset, len(data)) == data


class TestAiseCounterManagement:
    def test_lpids_assigned_lazily_and_uniquely(self):
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(0, bytes(64))  # page 0
        machine.write_block(4096, bytes(64))  # page 1
        engine = machine.encryption
        lpid0 = engine._load(0).lpid
        lpid1 = engine._load(1).lpid
        assert lpid0 != 0 and lpid1 != 0 and lpid0 != lpid1

    def test_minor_counter_increments_per_write(self):
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(128, bytes(64))
        machine.write_block(128, bytes(64))
        assert machine.encryption._load(0).minors[2] == 2

    def test_minor_overflow_reencrypts_only_that_page(self):
        machine = make_machine(data_bytes=16 * 4096)
        # Fill two pages with known data.
        machine.write_block(0, b"\x01" * 64)
        machine.write_block(64, b"\x02" * 64)
        machine.write_block(4096, b"\x03" * 64)
        other_page_cipher = machine.memory.raw_read(4096)
        engine = machine.encryption
        old_lpid = engine._load(0).lpid
        for _ in range(MINOR_MAX + 2):
            machine.write_block(0, b"\x01" * 64)
        assert engine.page_reencryptions >= 1
        assert engine._load(0).lpid != old_lpid
        # Sibling block in the page survived re-encryption.
        assert machine.read_block(64) == b"\x02" * 64
        # The other page was not rewritten at all.
        assert machine.memory.raw_read(4096) == other_page_cipher
        assert machine.read_block(4096) == b"\x03" * 64

    def test_overflow_with_integrity_keeps_tree_consistent(self):
        machine = make_machine(data_bytes=16 * 4096, integrity="merkle")
        machine.write_block(64, b"\x09" * 64)
        for _ in range(MINOR_MAX + 2):
            machine.write_block(0, b"\x08" * 64)
        assert machine.read_block(64) == b"\x09" * 64
        assert machine.read_block(0) == b"\x08" * 64

    def test_seed_audit_stays_clean_through_overflow(self):
        """The LPID refresh must never reuse a (seed) pad."""
        audit = SeedAudit(AiseSeedScheme())
        machine = SecureMemorySystem(
            MachineConfig(physical_bytes=16 * 4096, encryption="aise", integrity="none"),
            seed_audit=audit,
        )
        machine.boot()
        for _ in range(MINOR_MAX + 10):
            machine.write_block(0, bytes(64))
        assert audit.reuses == 0

    def test_reboot_preserves_gpc(self):
        machine = make_machine(data_bytes=16 * 4096)
        machine.write_block(0, b"\x0a" * 64)
        before = machine.gpc.value
        machine.reboot()
        assert machine.gpc.value == before
        assert machine.read_block(0) == b"\x0a" * 64  # data still decryptable


class TestGlobalCounterMachine:
    def test_stamps_stored_per_block(self):
        machine = make_machine(encryption="global64", integrity="none", data_bytes=16 * 4096)
        machine.write_block(0, bytes(64))
        machine.write_block(64, bytes(64))
        assert machine.encryption._read_stamp(0) == 1
        assert machine.encryption._read_stamp(64) == 2

    def test_wrap_triggers_whole_memory_reencryption(self):
        """Force a tiny global counter to wrap: every live block must be
        re-encrypted under a new key and still read back correctly."""
        machine = make_machine(encryption="global64", integrity="none", data_bytes=16 * 4096)
        machine.encryption.global_counter = type(machine.encryption.global_counter)(bits=6)
        for i in range(8):
            machine.write_block(i * 64, bytes([i]) * 64)
        for _ in range(70):  # wrap the 6-bit counter
            machine.write_block(512, b"\x77" * 64)
        assert machine.encryption.memory_reencryptions >= 1
        for i in range(8):
            if i * 64 == 512:
                continue
            assert machine.read_block(i * 64) == bytes([i]) * 64
        assert machine.read_block(512) == b"\x77" * 64


class TestVirtualAddressScheme:
    def test_needs_matching_context(self):
        """Decrypting with another process's context yields garbage —
        the shared-memory IPC breakage of section 4.2."""
        machine = make_machine(encryption="virt_addr", integrity="none", data_bytes=16 * 4096)
        writer = AccessContext(vaddr=0x8000, pid=1)
        reader_wrong = AccessContext(vaddr=0x8000, pid=2)
        machine.write_block(0, b"shared-data-here" * 4, writer)
        assert machine.read_block(0, writer) == b"shared-data-here" * 4
        assert machine.read_block(0, reader_wrong) != b"shared-data-here" * 4
