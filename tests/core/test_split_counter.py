"""The split-counter baseline: AISE's layout, an address's obligations."""

import pytest

from repro.core import IntegrityError, MachineConfig, SecureMemorySystem
from repro.core.counters import MINOR_MAX
from repro.core.seeds import SeedInput, SplitCounterSeedScheme, make_seed_scheme
from repro.core.storage import storage_breakdown
from repro.mem.layout import PAGE_SIZE

from tests.conftest import make_machine


class TestSeeds:
    def test_factory(self):
        assert isinstance(make_seed_scheme("split_ctr"), SplitCounterSeedScheme)

    def test_address_is_in_the_seed(self):
        scheme = SplitCounterSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=PAGE_SIZE, lpid=1, counter=0))
        assert set(a).isdisjoint(b)  # unlike AISE, frames matter

    def test_major_counter_separates_epochs(self):
        scheme = SplitCounterSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=0, lpid=2, counter=0))
        assert set(a).isdisjoint(b)

    def test_properties_match_table1_logic(self):
        props = SplitCounterSeedScheme().properties
        assert props.reencrypt_on_swap  # the address component's price
        assert props.supports_shared_memory  # physical address: IPC fine
        assert props.counter_bytes_per_data_byte == pytest.approx(1 / 64)


class TestMachine:
    def test_roundtrip(self):
        machine = make_machine(encryption="split_ctr", integrity="bonsai",
                               data_bytes=16 * PAGE_SIZE)
        machine.write_block(0, b"\x21" * 64)
        assert machine.read_block(0) == b"\x21" * 64

    def test_tamper_detected(self):
        machine = make_machine(encryption="split_ctr", integrity="bonsai",
                               data_bytes=16 * PAGE_SIZE)
        machine.write_block(0, b"\x22" * 64)
        machine.memory.corrupt(0)
        with pytest.raises(IntegrityError):
            machine.read_block(0)

    def test_same_counter_storage_as_aise(self):
        split = make_machine(encryption="split_ctr", integrity="none",
                             data_bytes=16 * PAGE_SIZE)
        aise = make_machine(encryption="aise", integrity="none",
                            data_bytes=16 * PAGE_SIZE)
        assert split.layout.counter_bytes == aise.layout.counter_bytes

    def test_minor_overflow_bumps_major_and_reencrypts(self):
        machine = make_machine(encryption="split_ctr", integrity="none",
                               data_bytes=16 * PAGE_SIZE)
        machine.write_block(64, b"\x33" * 64)
        major_before = machine.encryption._load(0).lpid
        for _ in range(MINOR_MAX + 2):
            machine.write_block(0, b"\x34" * 64)
        assert machine.encryption._load(0).lpid > major_before
        assert machine.encryption.page_reencryptions >= 1
        assert machine.read_block(64) == b"\x33" * 64

    def test_storage_model_matches_aise(self):
        split = storage_breakdown("split_ctr", "bonsai", 128)
        aise = storage_breakdown("aise", "bonsai", 128)
        assert split.overhead_fraction == pytest.approx(aise.overhead_fraction)


class TestKernelSwap:
    def test_split_counter_pays_reencryption_on_swap(self, kernel_factory):
        """Same storage as AISE, but the address in the seed brings back
        the swap re-encryption cost (why AISE replaces the major counter
        with the LPID, section 4.3)."""
        kernel = kernel_factory(encryption="split_ctr", integrity="bonsai")
        proc = kernel.create_process()
        kernel.mmap(proc.pid, 0x10000, 1)
        kernel.write(proc.pid, 0x10000, b"pay per swap")
        hog = kernel.create_process("hog")
        kernel.mmap(hog.pid, 0x900000, 20)
        for i in range(20):
            kernel.write(hog.pid, 0x900000 + i * PAGE_SIZE, b"\xee")
        assert not proc.page_table.lookup(0x10000).present
        assert kernel.read(proc.pid, 0x10000, 12) == b"pay per swap"
        assert kernel.stats.swap_reencrypted_blocks > 0

    def test_timing_model_matches_aise_reach(self):
        """In the timing simulator the split scheme caches exactly like
        AISE (64 blocks per counter line) — its penalty is systemic, not
        performance."""
        from repro.core.config import MachineConfig
        from repro.sim.simulator import TimingSimulator
        from repro.workloads.spec2k import spec_trace

        trace = spec_trace("gcc", 15_000)
        aise = TimingSimulator(MachineConfig(encryption="aise", integrity="none")).run(trace)
        split = TimingSimulator(MachineConfig(encryption="split_ctr", integrity="none")).run(trace)
        assert split.counter_misses == aise.counter_misses
        assert split.cycles == pytest.approx(aise.cycles)
