"""Hibernate/resume: NVRAM state vs the attackable sleeping memory image.

Section 4.3: the GPC is non-volatile so seeds stay unique "even across
system reboots, hibernation, or power optimizations that cut power off
to the processor". These tests also pin the integrity side: the root MAC
resumes from sealed storage, never from a recomputation over the
(possibly tampered) image.
"""

import pytest

from repro.core import IntegrityError, MachineConfig, SecureMemorySystem, aise_bmt_config
from repro.core.errors import ConfigurationError
from repro.mem.layout import PAGE_SIZE

CONFIG = aise_bmt_config(physical_bytes=16 * PAGE_SIZE)


def hibernated_machine():
    machine = SecureMemorySystem(CONFIG)
    machine.boot()
    machine.write_block(0, b"\x42" * 64)
    machine.write_block(PAGE_SIZE, b"\x43" * 64)
    return machine, *machine.hibernate()


class TestRoundTrip:
    def test_data_survives(self):
        _, nonvolatile, image = hibernated_machine()
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        assert resumed.read_block(0) == b"\x42" * 64
        assert resumed.read_block(PAGE_SIZE) == b"\x43" * 64

    def test_gpc_continues_not_restarts(self):
        machine, nonvolatile, image = hibernated_machine()
        before = machine.gpc.value
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        resumed.write_block(2 * PAGE_SIZE, b"\x44" * 64)  # new page, new LPID
        assert resumed.gpc.value > before

    def test_seeds_stay_unique_across_hibernation(self):
        """The reason the GPC is NVRAM: LPIDs issued after resume must not
        collide with LPIDs issued before hibernation."""
        machine, nonvolatile, image = hibernated_machine()
        lpid_before = machine.encryption._load(0).lpid
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        resumed.write_block(3 * PAGE_SIZE, bytes(64))
        lpid_after = resumed.encryption._load(3).lpid
        assert lpid_after > lpid_before

    def test_writes_after_resume_work(self):
        _, nonvolatile, image = hibernated_machine()
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        resumed.write_block(0, b"\x55" * 64)
        assert resumed.read_block(0) == b"\x55" * 64


class TestSleepingImageAttacks:
    def test_tampered_image_detected_on_resume(self):
        """The attacker owns the disk while the machine sleeps; the sealed
        root exposes any modification at first use."""
        _, nonvolatile, image = hibernated_machine()
        image = dict(image)
        image[0] = bytes(b ^ 0xFF for b in image[0])
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        with pytest.raises(IntegrityError):
            resumed.read_block(0)

    def test_rolled_back_image_detected(self):
        """Replay the WHOLE pre-update memory image: stale counters and
        MACs are internally consistent, but the sealed root is fresh."""
        machine = SecureMemorySystem(CONFIG)
        machine.boot()
        machine.write_block(0, b"OLD!" * 16)
        _, stale_image = machine.hibernate()
        machine.write_block(0, b"NEW!" * 16)
        nonvolatile, _ = machine.hibernate()
        resumed = SecureMemorySystem.resume(nonvolatile, stale_image, CONFIG)
        with pytest.raises(IntegrityError):
            resumed.read_block(0)

    def test_untouched_blocks_still_readable_after_partial_tamper(self):
        _, nonvolatile, image = hibernated_machine()
        image = dict(image)
        image[0] = bytes(b ^ 0xFF for b in image[0])
        resumed = SecureMemorySystem.resume(nonvolatile, image, CONFIG)
        assert resumed.read_block(PAGE_SIZE) == b"\x43" * 64


class TestConfigGuard:
    def test_mismatched_config_rejected(self):
        _, nonvolatile, image = hibernated_machine()
        other = MachineConfig(physical_bytes=16 * PAGE_SIZE,
                              encryption="global64", integrity="merkle")
        with pytest.raises(ConfigurationError):
            SecureMemorySystem.resume(nonvolatile, image, other)
