"""Counter prediction: hides the counter fetch, never breaks correctness."""

import pytest

from repro.core import MachineConfig
from repro.core.errors import ConfigurationError
from repro.core.prediction import CounterPredictor

from tests.conftest import make_machine

PAGE = 4096


def primed_machine_and_predictor(writes_per_block=1):
    machine = make_machine(data_bytes=16 * PAGE)
    predictor = CounterPredictor(machine)
    for block in range(8):
        for _ in range(writes_per_block):
            machine.write_block(block * 64, bytes([block]) * 64)
    # Teach the predictor the pages, then evict on-chip counters so the
    # next reads face real counter misses.
    for block in range(8):
        predictor.read_block(block * 64)
    machine.encryption._cache.clear()
    machine.tree._trusted.clear()
    return machine, predictor


class TestConstruction:
    def test_requires_bmt(self):
        machine = make_machine(integrity="merkle", data_bytes=16 * PAGE)
        with pytest.raises(ConfigurationError):
            CounterPredictor(machine)

    def test_requires_per_block_counters(self):
        machine = make_machine(encryption="global64", integrity="bonsai",
                               data_bytes=16 * PAGE)
        with pytest.raises(ConfigurationError):
            CounterPredictor(machine)

    def test_split_counter_variant_is_accepted(self):
        machine = make_machine(encryption="split_ctr", integrity="bonsai",
                               data_bytes=16 * PAGE)
        CounterPredictor(machine)  # AISE-family layout


class TestSpeculation:
    def test_prediction_hits_on_stable_counters(self):
        machine, predictor = primed_machine_and_predictor()
        plain, predicted = predictor.read_block(0)
        assert plain == bytes([0]) * 64
        assert predicted
        assert predictor.stats.hit_rate == 1.0

    def test_prediction_correct_for_all_blocks(self):
        machine, predictor = primed_machine_and_predictor(writes_per_block=3)
        machine.encryption._cache.clear()
        for block in range(8):
            plain, _ = predictor.read_block(block * 64)
            assert plain == bytes([block]) * 64

    def test_fallback_when_counter_ran_ahead(self):
        """Writes the predictor never saw push the minor beyond the
        candidate window; the architectural path must take over with the
        correct result."""
        machine, predictor = primed_machine_and_predictor()
        for _ in range(40):  # way past max_candidates=8
            machine.write_block(0, b"\x77" * 64)
        machine.encryption._cache.clear()
        plain, predicted = predictor.read_block(0)
        assert plain == b"\x77" * 64
        assert not predicted
        assert predictor.stats.fallbacks >= 1

    def test_prediction_recovers_after_fallback(self):
        machine, predictor = primed_machine_and_predictor()
        for _ in range(40):
            machine.write_block(0, b"\x77" * 64)
        machine.encryption._cache.clear()
        predictor.read_block(0)  # fallback, re-observes
        machine.encryption._cache.clear()
        machine.tree._trusted.clear()
        plain, predicted = predictor.read_block(0)
        assert plain == b"\x77" * 64
        assert predicted

    def test_no_attempt_when_counter_on_chip(self):
        machine, predictor = primed_machine_and_predictor()
        machine.read_block(0)  # counter block back on-chip
        attempts = predictor.stats.attempts
        plain, predicted = predictor.read_block(0)
        assert plain == bytes([0]) * 64
        assert not predicted
        assert predictor.stats.attempts == attempts

    def test_tamper_never_accepted_speculatively(self):
        """A corrupted block must not match ANY candidate MAC."""
        from repro.core.errors import IntegrityError

        machine, predictor = primed_machine_and_predictor()
        machine.memory.corrupt(0)
        with pytest.raises(IntegrityError):
            predictor.read_block(0)
        assert predictor.stats.hits == 0 or predictor.stats.fallbacks >= 1
