"""MachineConfig validation and derived properties."""

import pytest

from repro.core.config import (
    CacheConfig,
    MachineConfig,
    aise_bmt_config,
    baseline_config,
    global64_mt_config,
)
from repro.core.errors import ConfigurationError


class TestDefaults:
    def test_paper_parameters(self):
        config = MachineConfig()
        assert config.l2.size_bytes == 1024 * 1024
        assert config.l2.assoc == 8
        assert config.counter_cache.size_bytes == 32 * 1024
        assert config.counter_cache.assoc == 16
        assert config.memory_latency == 200
        assert config.aes_latency == 80
        assert config.mac_bits == 128
        assert config.lpid_bits == 64
        assert config.minor_counter_bits == 7

    def test_default_protection_is_the_proposal(self):
        config = MachineConfig()
        assert config.encryption == "aise"
        assert config.integrity == "bonsai"

    def test_swap_defaults_to_physical(self):
        config = MachineConfig(physical_bytes=1 << 20)
        assert config.swap_bytes == 1 << 20


class TestValidation:
    def test_rejects_unknown_encryption(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(encryption="rot13")

    def test_rejects_unknown_integrity(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(integrity="hope")

    def test_rejects_bad_mac_bits(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mac_bits=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(mac_bits=12)

    def test_rejects_mac_not_dividing_block(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mac_bits=192)  # 24B does not divide 64B


class TestDerived:
    @pytest.mark.parametrize("bits,arity", [(32, 16), (64, 8), (128, 4), (256, 2)])
    def test_merkle_arity(self, bits, arity):
        assert MachineConfig(mac_bits=bits).merkle_arity == arity

    def test_data_mac_caching_policy(self):
        """MT caches leaf MACs; BMT does not (paper section 5.2)."""
        assert MachineConfig(integrity="merkle").caches_data_macs
        assert not MachineConfig(integrity="bonsai").caches_data_macs
        assert MachineConfig(integrity="bonsai", cache_data_macs=True).caches_data_macs

    def test_with_protection(self):
        base = baseline_config()
        derived = base.with_protection("aise", "bonsai", mac_bits=64)
        assert derived.encryption == "aise"
        assert derived.mac_bits == 64
        assert derived.l2 == base.l2


class TestNamedConfigs:
    def test_baseline(self):
        config = baseline_config()
        assert (config.encryption, config.integrity) == ("none", "none")

    def test_aise_bmt(self):
        config = aise_bmt_config()
        assert (config.encryption, config.integrity) == ("aise", "bonsai")

    def test_global64_mt(self):
        config = global64_mt_config()
        assert (config.encryption, config.integrity) == ("global64", "merkle")

    def test_overrides_flow_through(self):
        config = aise_bmt_config(mac_bits=256, physical_bytes=1 << 20)
        assert config.mac_bits == 256
        assert config.physical_bytes == 1 << 20

    def test_cache_config(self):
        cache = CacheConfig(32 * 1024, 2, 2)
        assert cache.size_bytes == 32768
