"""Physical layout planning: regions exist, are disjoint, and sized right."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.errors import ConfigurationError
from repro.core.machine import plan_layout


def make_config(**kw):
    defaults = dict(physical_bytes=1 << 20, encryption="aise", integrity="bonsai")
    defaults.update(kw)
    return MachineConfig(**defaults)


class TestRegions:
    def test_aise_counter_region_is_one_block_per_page(self):
        layout, _ = plan_layout(make_config())
        assert layout.counter_bytes == (1 << 20) // 4096 * 64

    def test_global64_counter_region(self):
        layout, _ = plan_layout(make_config(encryption="global64", integrity="merkle"))
        assert layout.counter_bytes == (1 << 20) // 64 * 8

    def test_no_counters_without_counter_mode(self):
        layout, _ = plan_layout(make_config(encryption="none", integrity="merkle"))
        assert layout.counter_bytes == 0

    def test_page_root_directory_sized_by_swap(self):
        config = make_config(swap_bytes=2 << 20)  # 512 swap pages
        layout, _ = plan_layout(config)
        assert layout.prd_bytes == 512 * 16  # 128-bit MACs

    def test_no_prd_without_tree(self):
        layout, _ = plan_layout(make_config(integrity="mac_only"))
        assert layout.prd_bytes == 0

    def test_mac_region_for_bmt(self):
        layout, _ = plan_layout(make_config())
        assert layout.mac_bytes_region == (1 << 20) // 64 * 16

    def test_no_mac_region_for_standard_mt(self):
        layout, _ = plan_layout(make_config(integrity="merkle"))
        assert layout.mac_bytes_region == 0

    def test_region_classification(self):
        layout, _ = plan_layout(make_config())
        assert layout.region_of(0) == "data"
        assert layout.region_of(layout.counter_base) == "counter"
        assert layout.region_of(layout.prd_base) == "page_root"
        assert layout.region_of(layout.tree_base) == "tree"
        assert layout.region_of(layout.mac_base) == "mac"
        assert layout.region_of(layout.total_bytes) == "outside"


class TestTreeCoverage:
    def test_standard_mt_covers_data_counters_prd(self):
        layout, geometry = plan_layout(make_config(integrity="merkle"))
        assert geometry.covered_start == 0
        assert geometry.covered_bytes == layout.data_bytes + layout.counter_bytes + layout.prd_bytes

    def test_bmt_covers_only_counters_and_prd(self):
        layout, geometry = plan_layout(make_config())
        assert geometry.covered_start == layout.counter_base
        assert geometry.covered_bytes == layout.counter_bytes + layout.prd_bytes

    def test_bmt_tree_is_much_smaller(self):
        _, mt = plan_layout(make_config(integrity="merkle"))
        _, bmt = plan_layout(make_config())
        assert bmt.node_bytes < mt.node_bytes / 10

    def test_bmt_requires_counter_mode(self):
        with pytest.raises(ConfigurationError):
            plan_layout(make_config(encryption="none"))

    def test_no_geometry_without_tree(self):
        _, geometry = plan_layout(make_config(integrity="mac_only"))
        assert geometry is None


@settings(max_examples=25, deadline=None)
@given(pages=st.integers(min_value=1, max_value=512),
       enc=st.sampled_from(["aise", "global32", "global64", "phys_addr"]),
       integ=st.sampled_from(["none", "mac_only", "merkle", "bonsai"]),
       mac_bits=st.sampled_from([32, 64, 128, 256]))
def test_regions_disjoint_and_ordered_property(pages, enc, integ, mac_bits):
    if integ == "bonsai" and enc == "none":
        return
    config = MachineConfig(
        physical_bytes=pages * 4096, encryption=enc, integrity=integ, mac_bits=mac_bits
    )
    layout, geometry = plan_layout(config)
    assert 0 < layout.data_bytes == layout.counter_base
    assert layout.counter_base <= layout.prd_base <= layout.tree_base <= layout.mac_base
    assert layout.total_bytes == layout.mac_base + layout.mac_bytes_region
    assert layout.total_bytes % 64 == 0
    if geometry is not None:
        assert geometry.nodes_start == layout.tree_base
        assert geometry.nodes_end == layout.tree_base + layout.tree_bytes
