"""The analytic storage model must reproduce the paper's Table 2 exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.errors import ConfigurationError
from repro.core.storage import breakdown_for_config, counter_bytes_per_data_byte, storage_breakdown, tree_bytes
from repro.evalx.tables import PAPER_TABLE2


class TestTable2Exact:
    @pytest.mark.parametrize("bits,scheme", list(PAPER_TABLE2))
    def test_matches_paper_cell(self, bits, scheme):
        enc, integ = ("global64", "merkle") if scheme == "global64+mt" else ("aise", "bonsai")
        b = storage_breakdown(enc, integ, bits)
        mt, page_root, counters, total = PAPER_TABLE2[(bits, scheme)]
        assert b.merkle_fraction * 100 == pytest.approx(mt, abs=0.005)
        assert b.page_root_fraction * 100 == pytest.approx(page_root, abs=0.005)
        assert b.counter_fraction * 100 == pytest.approx(counters, abs=0.005)
        assert b.overhead_fraction * 100 == pytest.approx(total, abs=0.005)

    def test_aise_bmt_always_cheaper(self):
        """AISE+BMT is more storage-efficient at every MAC size (section 7.4)."""
        for bits in (32, 64, 128, 256):
            mt = storage_breakdown("global64", "merkle", bits)
            bmt = storage_breakdown("aise", "bonsai", bits)
            assert bmt.overhead_fraction < mt.overhead_fraction

    def test_32bit_gap_is_largest(self):
        """Paper: the gap widens to 2.3x at 32-bit MACs (1.6x at 256)."""
        gap32 = (storage_breakdown("global64", "merkle", 32).overhead_fraction
                 / storage_breakdown("aise", "bonsai", 32).overhead_fraction)
        gap256 = (storage_breakdown("global64", "merkle", 256).overhead_fraction
                  / storage_breakdown("aise", "bonsai", 256).overhead_fraction)
        assert gap32 == pytest.approx(2.3, abs=0.1)
        assert gap256 == pytest.approx(1.6, abs=0.1)


class TestCounterStorage:
    def test_aise_is_1_64th(self):
        assert counter_bytes_per_data_byte("aise") == pytest.approx(1 / 64)

    def test_global64_is_12_5_percent(self):
        assert counter_bytes_per_data_byte("global64") == 0.125

    def test_global32_is_half_that(self):
        assert counter_bytes_per_data_byte("global32") == 0.0625

    def test_no_encryption_no_counters(self):
        assert counter_bytes_per_data_byte("none") == 0.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            counter_bytes_per_data_byte("nonsense")


class TestTreeGeometryMath:
    def test_arity_4_tree_is_a_third(self):
        assert tree_bytes(3 * 1024, 16) == pytest.approx(1024)

    def test_arity_2_tree_equals_covered(self):
        assert tree_bytes(1024, 32) == pytest.approx(1024)

    def test_rejects_degenerate_arity(self):
        with pytest.raises(ConfigurationError):
            tree_bytes(1024, 64)


class TestOtherSchemes:
    def test_mac_only_overhead(self):
        b = storage_breakdown("aise", "mac_only", 128)
        # 16B MAC per 64B block = 25% of data, plus 1/64 counters.
        assert b.merkle_bytes / b.data_bytes == pytest.approx(0.25)
        assert b.page_root_bytes == 0

    def test_no_integrity(self):
        b = storage_breakdown("aise", "none", 128)
        assert b.merkle_bytes == 0
        assert b.overhead_fraction == pytest.approx((1 / 64) / (1 + 1 / 64))

    def test_config_integration(self):
        config = MachineConfig(encryption="aise", integrity="bonsai", mac_bits=128)
        b = breakdown_for_config(config)
        assert b.overhead_fraction * 100 == pytest.approx(21.55, abs=0.01)


@settings(max_examples=30, deadline=None)
@given(bits=st.sampled_from([32, 64, 128, 256]),
       data_mb=st.integers(min_value=1, max_value=4096))
def test_fractions_are_scale_invariant(bits, data_mb):
    """Table 2 percentages do not depend on the memory size."""
    small = storage_breakdown("aise", "bonsai", bits, data_bytes=1 << 24)
    sized = storage_breakdown("aise", "bonsai", bits, data_bytes=data_mb << 20)
    assert small.overhead_fraction == pytest.approx(sized.overhead_fraction)


@settings(max_examples=30, deadline=None)
@given(bits=st.sampled_from([32, 64, 128, 256]))
def test_components_sum_to_total(bits):
    b = storage_breakdown("global64", "merkle", bits)
    total = b.data_bytes + b.counter_bytes + b.merkle_bytes + b.page_root_bytes
    assert b.total_bytes == pytest.approx(total)
    assert b.data_fraction + b.overhead_fraction == pytest.approx(1.0)


class TestSwapProtectionComparison:
    """Section 5.1's design choice: one tree + directory beats N trees."""

    def test_on_chip_cost_scales_with_processes(self):
        from repro.core.storage import compare_swap_protection

        costs = compare_swap_protection(processes=100, avg_process_bytes=64 << 20)
        assert costs["single"].on_chip_root_bytes == 16  # one 128-bit root
        assert costs["per_process"].on_chip_root_bytes == 100 * 16

    def test_single_tree_manages_one_structure(self):
        from repro.core.storage import compare_swap_protection

        costs = compare_swap_protection(processes=64, avg_process_bytes=32 << 20)
        assert costs["single"].trees_to_manage == 1
        assert costs["per_process"].trees_to_manage == 64

    def test_directory_is_tiny(self):
        from repro.core.storage import compare_swap_protection

        costs = compare_swap_protection(processes=10, avg_process_bytes=64 << 20)
        # The page-root directory is a fraction of a percent of memory.
        assert costs["single"].memory_overhead_bytes < 0.005 * (1 << 30)
