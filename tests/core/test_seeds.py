"""Seed schemes: uniqueness properties and the vulnerabilities of baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SeedReuseError
from repro.core.seeds import (
    AiseSeedScheme,
    GlobalCounterSeedScheme,
    PhysicalAddressSeedScheme,
    SeedAudit,
    SeedInput,
    VirtualAddressSeedScheme,
    make_seed_scheme,
)


class TestAiseSeeds:
    def test_four_chunk_seeds_differ(self):
        scheme = AiseSeedScheme()
        seeds = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        assert len(set(seeds)) == 4

    def test_seed_fits_128_bits(self):
        scheme = AiseSeedScheme()
        ctx = SeedInput(paddr=4032, lpid=(1 << 64) - 1, counter=127)
        for seed in scheme.seeds_for_block(ctx):
            assert 0 <= seed < (1 << 128)

    def test_different_lpids_different_seeds(self):
        scheme = AiseSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=0, lpid=2, counter=0))
        assert set(a).isdisjoint(b)

    def test_different_blocks_in_page_differ(self):
        scheme = AiseSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=64, lpid=1, counter=0))
        assert set(a).isdisjoint(b)

    def test_counter_bump_changes_seed(self):
        scheme = AiseSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=0, lpid=1, counter=1))
        assert set(a).isdisjoint(b)

    def test_physical_address_does_not_matter_beyond_page_offset(self):
        """The address-independence that makes swap and IPC free: two
        frames hosting the same page (same LPID) produce the same seeds
        for the same page offset."""
        scheme = AiseSeedScheme()
        frame3 = scheme.seeds_for_block(SeedInput(paddr=3 * 4096 + 128, lpid=9, counter=5))
        frame8 = scheme.seeds_for_block(SeedInput(paddr=8 * 4096 + 128, lpid=9, counter=5))
        assert frame3 == frame8

    @settings(max_examples=40, deadline=None)
    @given(lpid1=st.integers(min_value=1, max_value=2**64 - 1),
           lpid2=st.integers(min_value=1, max_value=2**64 - 1),
           off1=st.integers(min_value=0, max_value=63),
           off2=st.integers(min_value=0, max_value=63),
           c1=st.integers(min_value=0, max_value=127),
           c2=st.integers(min_value=0, max_value=127))
    def test_uniqueness_property(self, lpid1, lpid2, off1, off2, c1, c2):
        """Distinct (LPID, block, counter) triples never collide."""
        scheme = AiseSeedScheme()
        s1 = scheme.seeds_for_block(SeedInput(paddr=off1 * 64, lpid=lpid1, counter=c1))
        s2 = scheme.seeds_for_block(SeedInput(paddr=off2 * 64, lpid=lpid2, counter=c2))
        if (lpid1, off1, c1) != (lpid2, off2, c2):
            assert set(s1).isdisjoint(s2)
        else:
            assert s1 == s2


class TestBaselineSeeds:
    def test_global_counter_ignores_address(self):
        scheme = GlobalCounterSeedScheme(64)
        a = scheme.seeds_for_block(SeedInput(paddr=0, counter=7))
        b = scheme.seeds_for_block(SeedInput(paddr=1 << 20, counter=7))
        assert a == b  # uniqueness comes only from the counter value

    def test_physical_address_binds_frame(self):
        scheme = PhysicalAddressSeedScheme()
        a = scheme.seeds_for_block(SeedInput(paddr=0, counter=1))
        b = scheme.seeds_for_block(SeedInput(paddr=4096, counter=1))
        assert set(a).isdisjoint(b)

    def test_virtual_scheme_with_pid_separates_processes(self):
        scheme = VirtualAddressSeedScheme(include_pid=True)
        p1 = scheme.seeds_for_block(SeedInput(vaddr=0x1000, pid=1, counter=0))
        p2 = scheme.seeds_for_block(SeedInput(vaddr=0x1000, pid=2, counter=0))
        assert set(p1).isdisjoint(p2)

    def test_virtual_scheme_without_pid_reuses_pads(self):
        """The cross-process pad reuse of section 4.2."""
        scheme = VirtualAddressSeedScheme(include_pid=False)
        p1 = scheme.seeds_for_block(SeedInput(vaddr=0x1000, pid=1, counter=0))
        p2 = scheme.seeds_for_block(SeedInput(vaddr=0x1000, pid=2, counter=0))
        assert p1 == p2


class TestSeedAudit:
    def test_detects_virtual_scheme_cross_process_reuse(self):
        audit = SeedAudit(VirtualAddressSeedScheme(include_pid=False))
        audit.record_encryption(SeedInput(vaddr=0x1000, pid=1, counter=0))
        with pytest.raises(SeedReuseError):
            audit.record_encryption(SeedInput(vaddr=0x1000, pid=2, counter=0))

    def test_detects_pid_reuse_even_with_pid_in_seed(self):
        """PID recycling re-creates seeds — why PIDs become non-reusable."""
        audit = SeedAudit(VirtualAddressSeedScheme(include_pid=True))
        audit.record_encryption(SeedInput(vaddr=0x1000, pid=5, counter=0))
        with pytest.raises(SeedReuseError):  # pid 5 recycled to a new process
            audit.record_encryption(SeedInput(vaddr=0x1000, pid=5, counter=0))

    def test_aise_clean_across_processes_and_time(self):
        audit = SeedAudit(AiseSeedScheme())
        for lpid in range(1, 20):
            for counter in range(5):
                audit.record_encryption(SeedInput(paddr=0, lpid=lpid, counter=counter))
        assert audit.reuses == 0
        assert audit.unique_seeds == 19 * 5 * 4

    def test_non_strict_mode_counts(self):
        audit = SeedAudit(GlobalCounterSeedScheme(64), strict=False)
        audit.record_encryption(SeedInput(counter=1))
        audit.record_encryption(SeedInput(counter=1))
        assert audit.reuses == 4  # all four chunk seeds repeated


class TestFactoryAndProperties:
    @pytest.mark.parametrize("name", ["aise", "global32", "global64", "phys_addr", "virt_addr"])
    def test_factory(self, name):
        scheme = make_seed_scheme(name)
        assert scheme.properties.name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_seed_scheme("rot13")

    def test_table1_key_facts(self):
        """The qualitative claims of Table 1, as machine-checkable fields."""
        assert AiseSeedScheme().properties.supports_shared_memory
        assert not AiseSeedScheme().properties.reencrypt_on_swap
        assert PhysicalAddressSeedScheme().properties.reencrypt_on_swap
        assert not VirtualAddressSeedScheme().properties.supports_shared_memory
        assert GlobalCounterSeedScheme(64).properties.supports_shared_memory

    def test_storage_ratios(self):
        assert AiseSeedScheme().properties.counter_bytes_per_data_byte == pytest.approx(1 / 64)
        assert GlobalCounterSeedScheme(64).properties.counter_bytes_per_data_byte == pytest.approx(1 / 8)


class TestSuperpages:
    """Section 4.3: LPIDs at the smallest page granularity keep seeds
    unique even when the OS maps larger pages (superpages)."""

    def test_superpage_spans_many_lpids(self):
        """A 64KB superpage is sixteen 4KB LPID units; with distinct
        LPIDs per unit, every block of the superpage seeds uniquely."""
        scheme = AiseSeedScheme()
        seen = set()
        base_lpid = 1000
        for unit in range(16):  # sixteen 4KB units of one superpage
            for block in range(64):
                seeds = scheme.seeds_for_block(
                    SeedInput(paddr=unit * 4096 + block * 64,
                              lpid=base_lpid + unit, counter=0)
                )
                for seed in seeds:
                    assert seed not in seen
                    seen.add(seed)
        assert len(seen) == 16 * 64 * 4

    def test_lpid_bits_cover_smallest_page(self):
        """The LPID portion is sized for the smallest supported page, so
        a larger page merely leaves some offset bits redundantly covered
        — never ambiguous."""
        scheme = AiseSeedScheme()
        # Same LPID, offsets beyond 4KB wrap into the next unit's LPID in
        # practice; within one unit all page-offset bits are in the seed.
        a = scheme.seeds_for_block(SeedInput(paddr=0, lpid=5, counter=0))
        b = scheme.seeds_for_block(SeedInput(paddr=4096, lpid=5, counter=0))
        assert a == b  # page offset repeats -> the OS must advance LPIDs
        c = scheme.seeds_for_block(SeedInput(paddr=4096, lpid=6, counter=0))
        assert set(a).isdisjoint(c)
