"""The functional and timing systems must agree on shared structure.

Both are built from the same ``plan_layout`` and ``TreeGeometry``; these
tests pin that the agreement is real — metadata addresses the timing
model fetches are exactly where the functional machine keeps the bytes.
"""

import pytest

from repro.core import MachineConfig, SecureMemorySystem
from repro.core.machine import plan_layout
from repro.sim.simulator import TimingSimulator
from repro.mem.layout import PAGE_SIZE

CONFIGS = [
    MachineConfig(physical_bytes=64 * PAGE_SIZE, encryption="aise", integrity="bonsai"),
    MachineConfig(physical_bytes=64 * PAGE_SIZE, encryption="aise", integrity="merkle"),
    MachineConfig(physical_bytes=64 * PAGE_SIZE, encryption="global64", integrity="merkle"),
    MachineConfig(physical_bytes=64 * PAGE_SIZE, encryption="split_ctr", integrity="bonsai",
                  mac_bits=64),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c.encryption}+{c.integrity}")
class TestSharedLayout:
    def test_counter_addresses_agree(self, config):
        machine = SecureMemorySystem(config)
        machine.boot()
        sim = TimingSimulator(config)
        if not machine.encryption.uses_counters:
            pytest.skip("no counters")
        for paddr in (0, 64, PAGE_SIZE, 5 * PAGE_SIZE + 128):
            assert machine.encryption.counter_block_address(paddr) == sim._counter_block_addr(paddr)

    def test_mac_addresses_agree(self, config):
        machine = SecureMemorySystem(config)
        machine.boot()
        sim = TimingSimulator(config)
        store = getattr(machine.integrity, "store", None)
        if store is None:
            pytest.skip("no per-block MAC store")
        for paddr in (0, 64, 3 * 64, PAGE_SIZE + 192):
            assert store.mac_block_address(paddr) == sim._mac_block_addr(paddr)

    def test_tree_walks_agree(self, config):
        """The timing model's inlined walk visits exactly the node blocks
        the functional tree stores MACs in."""
        machine = SecureMemorySystem(config)
        machine.boot()
        sim = TimingSimulator(config)
        if machine.tree is None:
            pytest.skip("no tree")
        geometry = machine.tree.geometry
        covered_addr = geometry.covered_start + 5 * 64
        functional = [ref.address for ref in geometry.walk(covered_addr)]

        # Reproduce the simulator's inline walk.
        index = (covered_addr - sim._covered_start) // 64
        timing = []
        for base in sim._walk_bases:
            index //= sim._arity
            timing.append(base + index * 64)
        assert timing == functional

    def test_layouts_identical(self, config):
        functional_layout = SecureMemorySystem(config).layout
        timing_layout, _ = plan_layout(config)
        assert functional_layout == timing_layout


class TestFunctionalTreeMatchesGeometry:
    def test_macs_live_where_the_walk_looks(self):
        """Write through the functional machine; the node block at the
        walk's level-1 address must contain the freshly computed MAC of
        the covered block (byte-level agreement)."""
        config = CONFIGS[0]
        machine = SecureMemorySystem(config)
        machine.boot()
        machine.write_block(0, b"\x77" * 64)  # dirties counter block 0
        geometry = machine.tree.geometry
        counter_addr = machine.encryption.counter_block_address(0)
        ref = geometry.walk(counter_addr)[0]
        node = machine.memory.raw_read(ref.address)
        raw_counter = machine.memory.raw_read(counter_addr)
        expected = machine.tree._mac_child(raw_counter, 0, geometry.child_index(counter_addr))
        slot = ref.slot * machine.config.mac_bytes
        assert node[slot : slot + machine.config.mac_bytes] == expected
