#!/usr/bin/env python3
"""Counter prediction: hiding decryption latency without a counter fetch.

Table 1 of the paper rates the global-counter scheme's latency hiding
"Caching: Poor, Prediction: Difficult" while AISE gets "Good". This
example makes that row concrete with the functional machine: a predictor
holding only LPIDs (8 bytes/page instead of a 64-byte counter block)
speculatively decrypts blocks by trying a few candidate minor counters
and letting the per-block MAC arbitrate — possible precisely because
AISE's minors are small and slowly-moving. A 64-bit global stamp offers
no such candidate set.

Run:  python examples/counter_prediction.py
"""

from repro.api import CounterPredictor, build_machine

PAGE = 4096


def main() -> None:
    machine = build_machine("aise+bmt", physical_bytes=64 * PAGE)
    predictor = CounterPredictor(machine, max_candidates=8)

    # A workload phase: write some pages a few times each.
    print("=== warm phase: writes establish counters, predictor observes ===")
    for page in range(16):
        for rewrite in range(3):
            machine.write_block(page * PAGE, bytes([page, rewrite] * 32))
    for page in range(16):
        predictor.read_block(page * PAGE)  # architectural reads teach it

    # Pressure evicts all on-chip counter blocks (context switch, big
    # working set, ...). Subsequent reads face counter-cache misses.
    machine.encryption.clear_volatile()
    machine.tree.clear_volatile()

    print("=== cold counter cache: speculative reads ===")
    for page in range(16):
        plain, predicted = predictor.read_block(page * PAGE)
        assert plain[:2] == bytes([page, 2])
        marker = "predicted (no counter fetch!)" if predicted else "architectural"
        if page < 4 or not predicted:
            print(f"  page {page:2}: {marker}")
    stats = predictor.stats
    print(f"\nprediction hit rate: {stats.hit_rate:.0%} "
          f"({stats.hits}/{stats.attempts} attempts, "
          f"{stats.candidate_trials} candidate MAC checks, "
          f"{stats.fallbacks} fallbacks)")

    # A page whose counters ran far ahead defeats the candidate window —
    # correctness is preserved by the architectural fallback.
    print("\n=== a page written 50x while the predictor wasn't looking ===")
    for i in range(50):
        machine.write_block(0, bytes([i]) * 64)
    machine.encryption.clear_volatile()
    plain, predicted = predictor.read_block(0)
    print(f"  value correct: {plain == bytes([49]) * 64}, "
          f"predicted: {predicted} (fallback fetched + verified the counter)")

    print("\nWhy this cannot work for the global-counter baseline: the")
    print("stamp on a block is a 64-bit global write serial number — no")
    print("small candidate set can contain it, so every counter-cache miss")
    print("must wait for the fetch (Table 1: 'Prediction: Difficult').")


if __name__ == "__main__":
    main()
