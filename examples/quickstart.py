#!/usr/bin/env python3
"""Quickstart: a secure processor protecting memory with AISE + BMT.

Builds the paper's proposed machine (AISE counter-mode encryption plus a
Bonsai Merkle Tree), moves data through it, shows that DRAM only ever
sees ciphertext, and demonstrates tamper detection — including a replay
attack that per-block MACs alone would miss.

Run:  python examples/quickstart.py
"""

from repro.api import IntegrityError, MachineConfig, breakdown_for_config, build_machine


def main() -> None:
    # A 1MB protected memory keeps the demo instant; the scheme is
    # identical at 1GB.
    machine = build_machine("aise+bmt", physical_bytes=1 << 20)

    print("=== AISE + Bonsai Merkle Tree quickstart ===")
    print(f"data region      : {machine.layout.data_bytes >> 10} KB")
    print(f"counter region   : {machine.layout.counter_bytes >> 10} KB "
          f"(one 64B block per 4KB page: 64-bit LPID + 64 x 7-bit counters)")
    print(f"bonsai tree      : {machine.layout.tree_bytes} B of nodes "
          f"(vs a data-covering tree at ~1/3 of memory)")
    print(f"per-block MACs   : {machine.layout.mac_bytes_region >> 10} KB")

    # --- ordinary protected accesses -----------------------------------
    secret = b"attack at dawn! " * 4  # one 64-byte cache block
    machine.write_block(0x1000, secret)
    assert machine.read_block(0x1000) == secret

    in_dram = machine.memory.raw_read(0x1000)
    print(f"\nplaintext        : {secret[:24]!r}...")
    print(f"what DRAM holds  : {in_dram[:24].hex()}...")
    assert in_dram != secret, "DRAM must never see plaintext"

    # Counter-mode hides equal plaintexts: write the same bytes elsewhere.
    machine.write_block(0x1040, secret)
    assert machine.memory.raw_read(0x1040) != in_dram
    print("equal plaintexts encrypt differently (seed uniqueness) ✔")

    # --- spoofing: flip bits in DRAM ------------------------------------
    machine.memory.corrupt(0x1000)
    try:
        machine.read_block(0x1000)
        raise SystemExit("BUG: tamper not detected")
    except IntegrityError as err:
        print(f"spoofing detected: {err}")

    # --- replay: roll back data AND its MAC together --------------------
    machine = build_machine("aise+bmt", physical_bytes=1 << 20)
    machine.write_block(0x2000, b"balance: $1000  " * 4)
    stale_cipher = machine.memory.raw_read(0x2000)
    mac_block = machine.integrity.store.mac_block_address(0x2000)
    stale_macs = machine.memory.raw_read(mac_block)
    machine.write_block(0x2000, b"balance: $0     " * 4)  # spent it
    machine.memory.raw_write(0x2000, stale_cipher)  # attacker restores both
    machine.memory.raw_write(mac_block, stale_macs)
    try:
        machine.read_block(0x2000)
        raise SystemExit("BUG: replay not detected")
    except IntegrityError as err:
        print(f"replay detected  : {err}")
        print("  (the bonsai tree guarantees the fresh counter, so the old")
        print("   MAC can no longer match — paper section 5.2)")

    # --- storage cost ----------------------------------------------------
    breakdown = breakdown_for_config(MachineConfig.preset("aise+bmt"))
    print(f"\nstorage overhead at 1GB/128-bit MACs: "
          f"{breakdown.overhead_fraction:.1%} of total memory "
          f"(paper Table 2: 21.55%)")
    print("done.")


if __name__ == "__main__":
    main()
