#!/usr/bin/env python3
"""MAC-size trade-off study: storage (Table 2) against performance (Fig 11).

Security consortia recommend ever-longer MACs (the paper cites NIST
moving to SHA-256/384/512). This example sweeps 32..256-bit MACs and
shows the two costs side by side for the standard Merkle organization
and the Bonsai one: storage comes from the exact analytic model (which
reproduces the paper's Table 2 to the digit), performance from the
timing model on a memory-bound workload.

Run:  python examples/mac_size_tradeoff.py [events]
"""

import sys

from repro.api import MachineConfig, load_trace, simulate, storage_breakdown

MAC_SIZES = (32, 64, 128, 256)


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    trace = load_trace("art", events)
    base = simulate(trace, "base")

    print("=== MAC size trade-off (art workload, 1GB memory model) ===\n")
    print(f"{'MAC':>5} | {'organization':14} | {'memory overhead':>15} | "
          f"{'exec overhead':>13} | {'L2 for data':>11}")
    print("-" * 74)

    for bits in MAC_SIZES:
        for label, enc, integ in (("global64+MT", "global64", "merkle"),
                                  ("AISE+BMT", "aise", "bonsai")):
            storage = storage_breakdown(enc, integ, bits)
            config = MachineConfig(encryption=enc, integrity=integ, mac_bits=bits)
            result = simulate(trace, config)
            print(f"{bits:>4}b | {label:14} | {storage.overhead_fraction:>14.2%} | "
                  f"{result.overhead_vs(base):>12.1%} | {result.l2_data_fraction:>10.1%}")
        print("-" * 74)

    print("\nThe asymmetry is the point of the Bonsai organization:")
    print("* a standard tree's nodes grow with MAC size AND live in the L2,")
    print("  so both costs explode (paper: 3.9% -> 53.2% exec overhead);")
    print("* the bonsai tree covers only counters, and per-block MACs are")
    print("  never cached, so stronger MACs cost storage but almost no")
    print("  performance (paper: 1.4% -> 2.4%).")


if __name__ == "__main__":
    main()
