#!/usr/bin/env python3
"""The attack/defense matrix across integrity schemes.

Runs the paper's attack model (section 3) — spoofing, splicing, replay,
and counter tampering by a physical adversary — against four machine
configurations, and prints which scheme catches what. The punchline is
the replay row: per-block MACs alone miss it; both Merkle organizations
(standard and bonsai) catch it, but the bonsai tree is ~64x smaller.

Run:  python examples/attack_detection.py
"""

from repro.api import build_machine, run_attacks

CONFIGS = [
    ("none (unprotected)", "none", "none"),
    ("MAC-only", "aise", "mac_only"),
    ("standard Merkle", "aise", "merkle"),
    ("Bonsai Merkle", "aise", "bonsai"),
]

SCENARIOS = ("spoofing", "splicing", "replay", "counter-tamper")


def main() -> None:
    print("=== Physical-attack detection matrix ===\n")
    header = f"{'scheme':20}" + "".join(f"{s:>16}" for s in SCENARIOS)
    print(header)
    print("-" * len(header))

    for label, encryption, integrity in CONFIGS:
        machine = build_machine(f"{encryption}+{integrity}",
                                physical_bytes=16 * 4096)
        outcomes = {r.scenario: r.detected for r in run_attacks(machine)}
        cells = "".join(
            f"{('DETECTED' if outcomes[s] else 'missed') if s in outcomes else '-':>16}"
            for s in SCENARIOS
        )
        print(f"{label:20}{cells}")

    print("\nNotes:")
    print("* MAC-only misses replay: the stale (value, MAC) pair is self-")
    print("  consistent. Freshness needs an on-chip root (section 5).")
    print("* The Bonsai tree achieves the standard tree's full matrix while")
    print("  covering only counters — 1/64th of the data (section 5.2).")

    # Show the tree-size difference concretely (layout only; no boot).
    mt = build_machine("aise+mt", physical_bytes=1 << 20, boot=False)
    bmt = build_machine("aise+bmt", physical_bytes=1 << 20, boot=False)
    print(f"\ntree node storage for a 1MB memory: "
          f"standard={mt.layout.tree_bytes}B, bonsai={bmt.layout.tree_bytes}B "
          f"({mt.layout.tree_bytes / max(1, bmt.layout.tree_bytes):.0f}x smaller)")


if __name__ == "__main__":
    main()
