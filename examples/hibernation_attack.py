#!/usr/bin/env python3
"""Attacking a hibernated machine — why the GPC and root live in NVRAM.

Section 4.3 requires the Global Page Counter to be non-volatile so seeds
stay unique "even across system reboots, hibernation, or power
optimizations". The integrity side has a mirror requirement: on resume,
the root MAC must come from sealed on-chip storage — a processor that
recomputed its root over the (disk-resident, attacker-accessible)
memory image would bless whatever the attacker left there.

This example hibernates a machine, lets an attacker rewrite history on
the sleeping image, and shows the resumed machine refusing the rollback.

Run:  python examples/hibernation_attack.py
"""

from repro.api import IntegrityError, MachineConfig, SecureMemorySystem, build_machine

PAGE = 4096
CONFIG = MachineConfig.preset("aise+bmt", physical_bytes=16 * PAGE)


def main() -> None:
    print("=== Hibernation attack demo ===\n")
    machine = build_machine(CONFIG)

    machine.write_block(0, b"license: expired" + bytes(48))
    print("state v1 written :", b"license: expired")
    _, stale_image = machine.hibernate()  # attacker snapshots the disk image

    machine.write_block(0, b"license: revoked" + bytes(48))
    print("state v2 written :", b"license: revoked")
    nonvolatile, current_image = machine.hibernate()
    print("machine hibernated (GPC + sealed root in NVRAM; image on disk)\n")

    # --- attack 1: roll the entire memory image back to v1 ----------------
    print("attack: restore the complete v1 memory image (data + counters")
    print("        + MACs + tree nodes — all internally consistent!)")
    resumed = SecureMemorySystem.resume(nonvolatile, stale_image, CONFIG)
    try:
        resumed.read_block(0)
        raise SystemExit("BUG: rollback accepted")
    except IntegrityError as err:
        print(f"resume detects it : {err}")
        print("  -> the sealed root is v2's; v1's tree cannot match it\n")

    # --- attack 2: bit-flip one block of the sleeping image ----------------
    print("attack: flip bits in one block of the sleeping image")
    tampered = dict(current_image)
    tampered[0] = bytes(b ^ 0xFF for b in tampered[0])
    resumed = SecureMemorySystem.resume(nonvolatile, tampered, CONFIG)
    try:
        resumed.read_block(0)
        raise SystemExit("BUG: tamper accepted")
    except IntegrityError as err:
        print(f"resume detects it : {err}\n")

    # --- honest resume ------------------------------------------------------
    resumed = SecureMemorySystem.resume(nonvolatile, current_image, CONFIG)
    print("honest resume     :", resumed.read_block(0)[:16])
    resumed.write_block(4096, b"post-resume data" + bytes(48))
    print("new page after resume gets LPID", resumed.encryption.page_counters(1).lpid,
          "(GPC continued, never reused)")


if __name__ == "__main__":
    main()
