#!/usr/bin/env python3
"""An OS running on the secure processor: VM, swap, fork, and IPC.

This is the scenario the paper's title is about — *OS-friendliness*.
A kernel with 16 physical frames runs several processes on an AISE+BMT
machine and exercises exactly the features that break under
address-based seed schemes:

1. page swapping under memory pressure (no re-encryption with AISE;
   counted re-encryptions with the physical-address baseline),
2. fork with copy-on-write,
3. shared-memory IPC between processes mapping different virtual
   addresses,
4. file-backed mmap (MAP_PRIVATE shared libraries with COW over one
   resident copy), and
5. tamper detection on the swap disk via the page-root directory.

Run:  python examples/secure_os_workflow.py
"""

from repro.api import IntegrityError, Kernel, build_machine

PAGE = 4096


def build_kernel(encryption: str = "aise", integrity: str = "bonsai") -> Kernel:
    machine = build_machine(f"{encryption}+{integrity}",
                            physical_bytes=16 * PAGE, swap_bytes=64 * PAGE)
    return Kernel(machine, swap_slots=64)


def demo_swap_costs() -> None:
    print("--- 1. page swap: AISE vs physical-address seeds ---")
    for encryption in ("aise", "phys_addr"):
        kernel = build_kernel(encryption=encryption)
        app = kernel.create_process("app")
        kernel.mmap(app.pid, 0x10000, 1)
        kernel.write(app.pid, 0x10000, b"survives the disk")
        # Memory pressure: a hog touches more pages than there are frames.
        hog = kernel.create_process("hog")
        kernel.mmap(hog.pid, 0x900000, 20)
        for i in range(20):
            kernel.write(hog.pid, 0x900000 + i * PAGE, b"\xee")
        assert not app.page_table.lookup(0x10000).present, "page should be on disk"
        assert kernel.read(app.pid, 0x10000, 17) == b"survives the disk"
        print(f"  {encryption:10}: swap-ins={kernel.stats.swap_ins:3} "
              f"swap-outs={kernel.stats.swap_outs:3} "
              f"blocks re-encrypted for swap={kernel.stats.swap_reencrypted_blocks}")
    print("  -> AISE moves ciphertext + counter blocks verbatim (section 4.4)\n")


def demo_fork_cow(kernel: Kernel) -> None:
    print("--- 2. fork with copy-on-write ---")
    parent = kernel.create_process("shell")
    kernel.mmap(parent.pid, 0x40000, 1)
    kernel.write(parent.pid, 0x40000, b"export PATH=/bin")
    child = kernel.fork(parent.pid)
    print(f"  child {child.pid} reads parent page: "
          f"{kernel.read(child.pid, 0x40000, 16)!r}")
    kernel.write(child.pid, 0x40000, b"export PATH=/opt")
    print(f"  after child write: parent={kernel.read(parent.pid, 0x40000, 16)!r} "
          f"child={kernel.read(child.pid, 0x40000, 16)!r}")
    print(f"  COW breaks: {kernel.stats.cow_breaks} "
          f"(page copied only when written — works because AISE seeds are "
          f"address-free)\n")


def demo_shared_memory(kernel: Kernel) -> None:
    print("--- 3. shared-memory IPC (mmap) ---")
    kernel.shm_create("ring-buffer", 1)
    producer = kernel.create_process("producer")
    consumer = kernel.create_process("consumer")
    # Deliberately different virtual addresses — fatal for vaddr seeds.
    kernel.mmap(producer.pid, 0x80000, 1, shared_name="ring-buffer")
    kernel.mmap(consumer.pid, 0x70000, 1, shared_name="ring-buffer")
    kernel.write(producer.pid, 0x80000, b"msg#1: hello from producer")
    received = kernel.read(consumer.pid, 0x70000, 26)
    print(f"  consumer (different vaddr, different pid) reads: {received!r}")
    assert received == b"msg#1: hello from producer"
    print("  -> one physical page, one LPID, one set of seeds: sharing "
          "just works (section 4.5)\n")


def demo_file_mmap(kernel: Kernel) -> None:
    print("--- 4. file-backed mmap: shared libraries ---")
    kernel.files.create("libcrypto.so", b"\x7fELF crypto routines" + bytes(4075))
    app1 = kernel.create_process("app1")
    app2 = kernel.create_process("app2")
    # MAP_PRIVATE: one resident (encrypted, integrity-covered) copy.
    kernel.mmap_file(app1.pid, 0x700000, "libcrypto.so", shared=False)
    kernel.mmap_file(app2.pid, 0x700000, "libcrypto.so", shared=False)
    f1 = app1.page_table.lookup(0x700000).frame
    f2 = app2.page_table.lookup(0x700000).frame
    print(f"  both processes map frame {f1} ({'shared' if f1 == f2 else 'BUG'}): "
          f"one copy, many mappers")
    kernel.write(app1.pid, 0x700000, b"\xccHOOK")  # app1 patches its view
    print(f"  app1 after private write: {kernel.read(app1.pid, 0x700000, 5)!r}")
    print(f"  app2 still sees          : {kernel.read(app2.pid, 0x700000, 5)!r}")
    print(f"  file on disk untouched   : "
          f"{kernel.files.raw_content('libcrypto.so')[:5]!r}")
    print("  -> address-free seeds make the single in-memory copy readable")
    print("     by every mapper; COW keeps private patches private\n")


def demo_swap_tamper(kernel: Kernel) -> None:
    print("--- 5. tampering with the swap disk ---")
    victim = kernel.create_process("victim")
    kernel.mmap(victim.pid, 0x50000, 1)
    kernel.write(victim.pid, 0x50000, b"ssn=123-45-6789")
    hog = kernel.create_process("hog2")
    kernel.mmap(hog.pid, 0xA00000, 20)
    for i in range(20):
        kernel.write(hog.pid, 0xA00000 + i * PAGE, b"\xdd")
    pte = victim.page_table.lookup(0x50000)
    assert not pte.present
    kernel.swap.corrupt_slot(pte.swap_slot, byte_offset=300)
    try:
        kernel.read(victim.pid, 0x50000, 15)
        raise SystemExit("BUG: swap tamper missed")
    except IntegrityError as err:
        print(f"  detected on swap-in: {err}")
    print("  -> the page-root directory extends the single on-chip root "
          "to the disk (section 5.1)\n")


def main() -> None:
    print("=== Secure OS workflow on AISE + BMT ===\n")
    demo_swap_costs()
    kernel = build_kernel()
    demo_fork_cow(kernel)
    demo_shared_memory(kernel)
    demo_file_mmap(kernel)
    demo_swap_tamper(kernel)
    stats = kernel.stats
    print(f"final kernel stats: faults={stats.page_faults} "
          f"zero-fills={stats.demand_zero_fills} swap-ins={stats.swap_ins} "
          f"swap-outs={stats.swap_outs} cow-breaks={stats.cow_breaks} "
          f"forks={stats.forks}")
    print(f"TLB hit rate: {kernel.tlb.hit_rate:.1%}")


if __name__ == "__main__":
    main()
