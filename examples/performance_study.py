#!/usr/bin/env python3
"""A miniature of the paper's performance evaluation (Figures 6-8).

Simulates a handful of SPEC2K-like workloads against five protection
configurations on the trace-driven timing model and prints normalized
execution-time overheads, L2 miss rates, and bus utilization — the
quantities the paper's Figures 6, 8, and 10 plot.

For the full 21-benchmark regeneration of every figure, run:
    python -m repro.evalx.report --events 120000
or the benchmark harness:
    pytest benchmarks/ --benchmark-only

Run:  python examples/performance_study.py [events]
"""

import sys

from repro.core import MachineConfig, aise_bmt_config, baseline_config, global64_mt_config
from repro.sim import TimingSimulator
from repro.workloads import spec_trace

BENCHES = ("art", "mcf", "swim", "gcc", "gzip")
CONFIGS = [
    ("aise", MachineConfig(encryption="aise", integrity="none")),
    ("global64", MachineConfig(encryption="global64", integrity="none")),
    ("aise+mt", MachineConfig(encryption="aise", integrity="merkle")),
    ("aise+bmt", aise_bmt_config()),
    ("g64+mt", global64_mt_config()),
]


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"=== Performance study ({events} L2 accesses per benchmark) ===\n")
    print(f"{'bench':8} {'base miss':>9} {'base bus':>9}", end="")
    for label, _ in CONFIGS:
        print(f"{label:>10}", end="")
    print()

    averages = {label: 0.0 for label, _ in CONFIGS}
    for bench in BENCHES:
        trace = spec_trace(bench, events)
        base = TimingSimulator(baseline_config()).run(trace)
        print(f"{bench:8} {base.l2_miss_rate:9.1%} {base.bus_utilization:9.1%}", end="")
        for label, config in CONFIGS:
            result = TimingSimulator(config).run(trace)
            overhead = result.overhead_vs(base)
            averages[label] += overhead / len(BENCHES)
            print(f"{overhead:10.1%}", end="")
        print()

    print(f"\n{'average':8} {'':9} {'':9}", end="")
    for label, _ in CONFIGS:
        print(f"{averages[label]:10.1%}", end="")
    print("\n\nReading the table like the paper does:")
    print("* encryption alone is nearly free with AISE; the global-counter")
    print("  scheme pays for its poor counter-cache reach (Figure 7);")
    print("* the standard Merkle tree is the dominant cost, especially on")
    print("  memory-bound workloads (Figure 8);")
    print("* AISE+BMT ends within a few percent of unprotected execution")
    print("  while global64+MT — the prior scheme with equivalent system")
    print("  support — pays an order of magnitude more (Figure 6).")


if __name__ == "__main__":
    main()
