#!/usr/bin/env python3
"""A miniature of the paper's performance evaluation (Figures 6-8).

Simulates a handful of SPEC2K-like workloads against five protection
configurations on the trace-driven timing model and prints normalized
execution-time overheads, L2 miss rates, and bus utilization — the
quantities the paper's Figures 6, 8, and 10 plot.

For the full 21-benchmark regeneration of every figure, run:
    python -m repro.evalx.report --events 120000
or the benchmark harness:
    pytest benchmarks/ --benchmark-only

Run:  python examples/performance_study.py [events]
"""

import sys

from repro.api import load_trace, preset_names, simulate

BENCHES = ("art", "mcf", "swim", "gcc", "gzip")
CONFIGS = [label for label in preset_names() if label not in ("base", "global32")]


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"=== Performance study ({events} L2 accesses per benchmark) ===\n")
    print(f"{'bench':8} {'base miss':>9} {'base bus':>9}", end="")
    for label in CONFIGS:
        print(f"{label:>12}", end="")
    print()

    averages = {label: 0.0 for label in CONFIGS}
    for bench in BENCHES:
        trace = load_trace(bench, events)
        base = simulate(trace, "base")
        print(f"{bench:8} {base.l2_miss_rate:9.1%} {base.bus_utilization:9.1%}", end="")
        for label in CONFIGS:
            result = simulate(trace, label)
            overhead = result.overhead_vs(base)
            averages[label] += overhead / len(BENCHES)
            print(f"{overhead:12.1%}", end="")
        print()

    print(f"\n{'average':8} {'':9} {'':9}", end="")
    for label in CONFIGS:
        print(f"{averages[label]:12.1%}", end="")
    print("\n\nReading the table like the paper does:")
    print("* encryption alone is nearly free with AISE; the global-counter")
    print("  scheme pays for its poor counter-cache reach (Figure 7);")
    print("* the standard Merkle tree is the dominant cost, especially on")
    print("  memory-bound workloads (Figure 8);")
    print("* AISE+BMT ends within a few percent of unprotected execution")
    print("  while global64+MT — the prior scheme with equivalent system")
    print("  support — pays an order of magnitude more (Figure 6).")


if __name__ == "__main__":
    main()
