#!/usr/bin/env python3
"""Record a real OS workload, replay it under every protection scheme.

The library's two halves meet here: an application runs on the
*functional* kernel (real crypto, real page tables), its data-access
stream is captured with :class:`repro.sim.AccessRecorder`, and that
exact stream is then replayed on the *timing* model under each
protection configuration — an apples-to-apples performance comparison
for a workload you actually ran.

Run:  python examples/record_and_replay.py
"""

from repro.api import AccessRecorder, Kernel, build_machine, simulate

PAGE = 4096


def run_application(kernel: Kernel) -> None:
    """A little 'database': load pages, update hot rows, scan, fork a reader."""
    db = kernel.create_process("db")
    kernel.mmap(db.pid, 0x100000, 12)
    for page in range(12):  # bulk load
        kernel.write(db.pid, 0x100000 + page * PAGE, bytes([page]) * PAGE)
    for round_ in range(30):  # hot-row updates
        row = (round_ * 7) % 4
        kernel.write(db.pid, 0x100000 + row * PAGE + 128, bytes([round_]) * 64)
    reader = kernel.fork(db.pid)  # snapshot reader
    total = 0
    for page in range(12):  # full scan from the fork
        total += sum(kernel.read(reader.pid, 0x100000 + page * PAGE, 64))
    kernel.write(db.pid, 0x100000, b"post-fork write breaks COW" + bytes(38))


def main() -> None:
    print("=== record (functional) -> replay (timing) ===\n")
    machine = build_machine("aise+bmt", physical_bytes=64 * PAGE)
    kernel = Kernel(machine, swap_slots=64)
    with AccessRecorder(machine, mean_gap=12) as recorder:
        run_application(kernel)
    trace = recorder.to_trace("db-workload")
    print(f"captured {len(recorder.raw_events)} bus transactions, "
          f"{len(trace)} data-block accesses "
          f"(metadata traffic is regenerated per scheme below)\n")

    base = simulate(trace, "base", warmup=0.0)
    print(f"{'configuration':22} {'cycles':>12} {'overhead':>9}")
    print("-" * 46)
    print(f"{'unprotected':22} {base.cycles:12,.0f} {'-':>9}")
    for label, preset in [
        ("aise only", "aise"),
        ("aise + bonsai MT", "aise+bmt"),
        ("aise + standard MT", "aise+mt"),
        ("global64 + standard MT", "global64+mt"),
    ]:
        result = simulate(trace, preset, warmup=0.0)
        print(f"{label:22} {result.cycles:12,.0f} {result.overhead_vs(base):9.1%}")

    print("\nThe ordering matches the paper's Figure 6/8 — on a workload")
    print("that just ran, functionally verified, on the secure machine.")


if __name__ == "__main__":
    main()
